"""Lab substrate: environment, workloads, fault injection, scenarios."""

from .workloads import ExternalWorkload, QueryJob
from .environment import DiagnosisBundle, Environment
from .faults import FaultInjector
from .scenarios import (
    QUERY_NAME,
    Scenario,
    ScenarioBundle,
    ScenarioInfo,
    all_table1_scenarios,
    scenario_buffer_pool,
    scenario_concurrent_db_san,
    scenario_cpu_saturation,
    scenario_data_property_change,
    scenario_flapping_san_misconfiguration,
    scenario_healthy,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
    scenario_staggered_dual_faults,
    scenario_switch_degradation,
    scenario_two_external_workloads,
)

__all__ = [
    "QueryJob",
    "ExternalWorkload",
    "Environment",
    "DiagnosisBundle",
    "FaultInjector",
    "QUERY_NAME",
    "Scenario",
    "ScenarioBundle",
    "ScenarioInfo",
    "all_table1_scenarios",
    "scenario_san_misconfiguration",
    "scenario_two_external_workloads",
    "scenario_data_property_change",
    "scenario_concurrent_db_san",
    "scenario_lock_contention",
    "scenario_plan_regression",
    "scenario_cpu_saturation",
    "scenario_buffer_pool",
    "scenario_raid_rebuild",
    "scenario_flapping_san_misconfiguration",
    "scenario_staggered_dual_faults",
    "scenario_healthy",
    "scenario_switch_degradation",
]
