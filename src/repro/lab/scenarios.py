"""The experimental scenarios of Table 1 (plus the Table 2 variant and a
plan-regression scenario for Module PD).

Each scenario builds a fresh environment around the Figure-1 testbed: the
TPC-H catalog laid out over volumes V1/V2, the canonical 25-operator Q2 plan
executed every 30 simulated minutes, and a fault injected halfway through the
timeline.  Runs after the fault are labelled unsatisfactory (the
administrator's marking step), and the resulting
:class:`~repro.lab.environment.DiagnosisBundle` is what DIADS diagnoses.

Ground-truth root-cause identifiers match the entry ids of the default
symptoms database (:mod:`repro.core.symptoms`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..db.plans import canonical_q2_plan
from ..db.query import simple_report_query
from ..db.tpch import build_tpch_catalog
from ..san.builder import build_testbed
from ..san.components import Server, Volume
from .environment import DiagnosisBundle, Environment
from .faults import FaultInjector, intermittent_windows
from .workloads import QueryJob

__all__ = [
    "QUERY_NAME",
    "ScenarioInfo",
    "Scenario",
    "ScenarioBundle",
    "scenario_san_misconfiguration",
    "scenario_two_external_workloads",
    "scenario_data_property_change",
    "scenario_concurrent_db_san",
    "scenario_lock_contention",
    "scenario_plan_regression",
    "scenario_cpu_saturation",
    "scenario_buffer_pool",
    "scenario_raid_rebuild",
    "scenario_flapping_san_misconfiguration",
    "scenario_staggered_dual_faults",
    "scenario_healthy",
    "scenario_switch_degradation",
    "all_table1_scenarios",
]

#: Name of the periodic report query every scenario diagnoses.
QUERY_NAME = "q2-report"

#: Query period (seconds): a run every simulated 30 minutes.
QUERY_PERIOD_S = 1800.0

#: Offset of the first query run into the timeline.
FIRST_RUN_S = 600.0


@dataclass(frozen=True)
class ScenarioInfo:
    """Ground truth and paper cross-reference for one scenario."""

    scenario_id: int
    name: str
    description: str
    ground_truth: tuple[str, ...]
    critical_modules: tuple[str, ...]
    fault_time: float


@dataclass
class ScenarioBundle:
    """A diagnosis-ready bundle plus its scenario ground truth.

    Transparently proxies the wrapped :class:`DiagnosisBundle`'s attributes,
    so anything that diagnoses a bundle accepts a scenario bundle directly.
    """

    info: ScenarioInfo
    bundle: DiagnosisBundle
    query_name: str = QUERY_NAME

    # -- DiagnosisBundle proxy ------------------------------------------
    @property
    def stores(self):
        return self.bundle.stores

    @property
    def testbed(self):
        return self.bundle.testbed

    @property
    def topology(self):
        return self.bundle.topology

    @property
    def catalog(self):
        return self.bundle.catalog

    @property
    def db_config(self):
        return self.bundle.db_config

    @property
    def initial_catalog(self):
        return self.bundle.initial_catalog

    @property
    def initial_config(self):
        return self.bundle.initial_config

    @property
    def query_names(self):
        return self.bundle.query_names

    @property
    def query_specs(self):
        return self.bundle.query_specs


@dataclass
class Scenario:
    """A runnable experiment: build the environment, run it, label the runs."""

    info: ScenarioInfo
    build: Callable[[], Environment]
    duration_s: float
    query_name: str = QUERY_NAME
    label_window: tuple[float, float] | None = None
    #: Multi-window labelling for intermittent faults: runs starting inside
    #: *any* window are unsatisfactory, everything else satisfactory.  Takes
    #: precedence over ``label_window``.
    label_windows: list[tuple[float, float]] | None = None

    def run(self) -> ScenarioBundle:
        env = self.build()
        bundle = env.run(self.duration_s)
        if self.label_windows is not None:
            windows = self.label_windows
            bundle.stores.runs.label_by_rule(
                self.query_name,
                lambda r: any(start <= r.start_time < end for start, end in windows),
            )
        else:
            window = self.label_window or (self.info.fault_time, self.duration_s + 1.0)
            bundle.stores.runs.label_by_window(self.query_name, *window)
        return ScenarioBundle(info=self.info, bundle=bundle, query_name=self.query_name)


def _base_env(seed: int, monitor_noise: float = 0.05, executor_noise: float = 0.02) -> Environment:
    env = Environment(
        testbed=build_testbed(),
        catalog=build_tpch_catalog(),
        seed=seed,
        monitor_noise_sigma=monitor_noise,
        executor_noise_sigma=executor_noise,
    )
    env.add_job(
        QueryJob(
            name=QUERY_NAME,
            period_s=QUERY_PERIOD_S,
            first_run_s=FIRST_RUN_S,
            pinned_plan=canonical_q2_plan(),
        )
    )
    # The paper's testbed "is part of a production SAN environment, with the
    # interconnecting fabric and storage controllers being shared by other
    # applications": V3/V4 carry steady background traffic from other hosts,
    # so P2's volumes have a non-trivial metric baseline.
    from .workloads import ExternalWorkload
    from ..san.iomodel import VolumeLoad

    env.add_external(
        ExternalWorkload(
            name="background-V3",
            volume_id="V3",
            load=VolumeLoad(read_iops=45.0, write_iops=30.0),
        )
    )
    env.add_external(
        ExternalWorkload(
            name="background-V4",
            volume_id="V4",
            load=VolumeLoad(read_iops=30.0, write_iops=20.0),
        )
    )
    return env


def _fault_time(hours: float) -> float:
    return hours * 3600.0 / 2.0


# ---------------------------------------------------------------------------
# Scenario 1 (+ Table 2 variant)
# ---------------------------------------------------------------------------
def scenario_san_misconfiguration(
    hours: float = 24.0, seed: int = 7, with_v2_burst: bool = False
) -> Scenario:
    """Table 1, row 1: misconfigured volume V' lands on V1's disks.

    With ``with_v2_burst`` the Table-2 variant is produced: additional bursty
    I/O on V3 (sharing P2's disks with V2) raises V2's monitored back-end
    metrics without touching the query, because the bursts are phased to miss
    query-run starts.
    """
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        injector = FaultInjector(env)
        injector.san_misconfiguration(at=fault_t, write_iops=300.0, read_iops=60.0)
        if with_v2_burst:
            injector.external_contention(
                at=fault_t,
                volume_id="V3",
                write_iops=15.0,
                read_iops=320.0,
                name="bursty-load-V3",
                # Short bursts, phased mid-way through each query period so
                # they never coincide with a run start: the query barely
                # feels them, but monitoring buckets capture (part of) them.
                pattern="bursty",
                duty_cycle=0.25,
                burst_period_s=240.0,
                active_when=lambda t: 900.0 <= (t - FIRST_RUN_S) % QUERY_PERIOD_S < 1500.0,
            )
        return env

    suffix = " + bursty V2 load (Table 2 variant)" if with_v2_burst else ""
    return Scenario(
        info=ScenarioInfo(
            scenario_id=1,
            name="san-misconfiguration" + ("-v2-burst" if with_v2_burst else ""),
            description="SAN misconfiguration leading to contention in volume V1" + suffix,
            ground_truth=("volume-contention-san-misconfig",),
            critical_modules=("SD",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


# ---------------------------------------------------------------------------
# Scenario 2
# ---------------------------------------------------------------------------
def scenario_two_external_workloads(hours: float = 24.0, seed: int = 11) -> Scenario:
    """Table 1, row 2: workloads hit both V1's and V2's disks, but only the
    former overlaps query executions.  Module DA must prune the V2 symptoms."""
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        topo = env.testbed.topology
        # A pre-existing second app volume on P1 (no misconfiguration event —
        # this scenario is pure workload contention).
        topo.add(Server(component_id="srv-app2", name="App Server 2"))
        topo.add(Volume(component_id="V5", name="V5", pool_id="P1"))
        topo.connect("P1", "V5")
        env.testbed.access.lun_mapping.map_volume("V5", "srv-app2")

        injector = FaultInjector(env)
        injector.external_contention(
            at=fault_t, volume_id="V5", write_iops=240.0, read_iops=60.0,
            name="app-load-on-P1",
        )
        injector.external_contention(
            at=fault_t,
            volume_id="V3",
            write_iops=200.0,
            read_iops=50.0,
            name="app-load-on-P2-offwindow",
            # Only active mid-period, after each query run has started.
            active_when=lambda t: 900.0 <= (t - FIRST_RUN_S) % QUERY_PERIOD_S < 1500.0,
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=2,
            name="two-external-workloads",
            description=(
                "Contention caused by external workloads on volumes V1 and V2; "
                "only the former affects query performance"
            ),
            ground_truth=("volume-contention-external-workload",),
            critical_modules=("DA",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


# ---------------------------------------------------------------------------
# Scenario 3
# ---------------------------------------------------------------------------
def scenario_data_property_change(
    hours: float = 24.0, seed: int = 13, multiplier: float = 1.5
) -> Scenario:
    """Table 1, row 3: a DML batch changes data properties; the extra I/O
    propagates to the SAN as (mild) volume contention on V2."""
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        FaultInjector(env).data_property_change(
            at=fault_t, table="partsupp", multiplier=multiplier
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=3,
            name="data-property-change",
            description=(
                "SQL DML causes a subtle change in data properties; problem "
                "propagates to SAN causing volume contention"
            ),
            ground_truth=("data-property-change",),
            critical_modules=("CR", "IA"),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


# ---------------------------------------------------------------------------
# Scenario 4
# ---------------------------------------------------------------------------
def scenario_concurrent_db_san(
    hours: float = 24.0, seed: int = 17, multiplier: float = 1.35
) -> Scenario:
    """Table 1, row 4: concurrent DB (data change) and SAN (misconfiguration)
    problems; both must be identified and ranked by impact."""
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        injector = FaultInjector(env)
        injector.san_misconfiguration(at=fault_t, write_iops=300.0, read_iops=60.0)
        injector.data_property_change(at=fault_t, table="partsupp", multiplier=multiplier)
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=4,
            name="concurrent-db-san",
            description="Concurrent DB (data properties) and SAN (misconfiguration) problems",
            ground_truth=("volume-contention-san-misconfig", "data-property-change"),
            critical_modules=("IA",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


# ---------------------------------------------------------------------------
# Scenario 5
# ---------------------------------------------------------------------------
def scenario_lock_contention(
    hours: float = 24.0, seed: int = 19, mean_wait_s: float = 2.5
) -> Scenario:
    """Table 1, row 5: a table-locking problem inside the database, with only
    spurious (noise-induced) volume symptoms.  IA must mark any volume cause
    as low impact."""
    fault_t = _fault_time(hours)
    end_t = hours * 3600.0

    def build() -> Environment:
        env = _base_env(seed, monitor_noise=0.08)
        FaultInjector(env).lock_contention(
            at=fault_t, table="supplier", mean_wait_s=mean_wait_s, until=end_t
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=5,
            name="lock-contention",
            description=(
                "DB problem (locking-based) and spurious symptoms of volume "
                "contention due to noise"
            ),
            ground_truth=("lock-contention",),
            critical_modules=("IA",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=end_t,
    )


# ---------------------------------------------------------------------------
# Plan-regression scenario (Module PD; beyond Table 1)
# ---------------------------------------------------------------------------
def scenario_plan_regression(
    hours: float = 24.0, seed: int = 23, via: str = "index_drop"
) -> Scenario:
    """A plan change — index drop or config change — slows a replanned query.

    Exercises the workflow's left branch (Figure 2): Module PD detects the
    plan difference and pinpoints which schema/config change caused it.
    """
    if via not in ("index_drop", "config_change"):
        raise ValueError("via must be 'index_drop' or 'config_change'")
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = Environment(
            testbed=build_testbed(),
            catalog=build_tpch_catalog(),
            seed=seed,
        )
        env.add_job(
            QueryJob(
                name="supplier-parts-report",
                period_s=QUERY_PERIOD_S,
                first_run_s=FIRST_RUN_S,
                spec=simple_report_query(),
            )
        )
        injector = FaultInjector(env)
        if via == "index_drop":
            injector.drop_index(at=fault_t, index_name="ix_partsupp_suppkey")
        else:
            injector.change_db_config(at=fault_t, random_page_cost=40.0)
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=6,
            name=f"plan-regression-{via}",
            description=f"Plan regression caused by {via.replace('_', ' ')}",
            ground_truth=(
                "plan-regression-index-drop"
                if via == "index_drop"
                else "plan-regression-config-change",
            ),
            critical_modules=("PD",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
        query_name="supplier-parts-report",
    )


# ---------------------------------------------------------------------------
# Extension scenarios (root causes listed in the paper's introduction but not
# part of the Table-1 evaluation)
# ---------------------------------------------------------------------------
def scenario_cpu_saturation(hours: float = 24.0, seed: int = 29) -> Scenario:
    """CPU saturation of the database server — "another process hogs it"."""
    fault_t = _fault_time(hours)
    end_t = hours * 3600.0

    def build() -> Environment:
        env = _base_env(seed)
        FaultInjector(env).cpu_saturation(
            at=fault_t, until=end_t, cpu_multiplier=4.0, server_pct=75.0
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=7,
            name="cpu-saturation",
            description="CPU saturation of the database server by an external process",
            ground_truth=("cpu-saturation",),
            critical_modules=("DA", "SD"),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=end_t,
    )


def scenario_buffer_pool(hours: float = 24.0, seed: int = 31) -> Scenario:
    """Buffer-pool misconfiguration: the cache shrinks, physical I/O explodes."""
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        FaultInjector(env).shrink_buffer_pool(at=fault_t, new_cache_mb=12.0)
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=8,
            name="buffer-pool-thrashing",
            description="Buffer pool shrunk by misconfiguration; hit ratio collapses",
            ground_truth=("buffer-pool-thrashing",),
            critical_modules=("DA", "SD"),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


def scenario_raid_rebuild(hours: float = 24.0, seed: int = 37) -> Scenario:
    """Disk failure + RAID rebuild on V1's pool degrading the query."""
    fault_t = _fault_time(hours)
    rebuild_hours = hours * 3600.0 - fault_t  # rebuilding until the end

    def build() -> Environment:
        env = _base_env(seed)
        FaultInjector(env).raid_rebuild(
            at=fault_t, disk_id="d1", duration_s=rebuild_hours, capacity_factor=0.35
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=9,
            name="raid-rebuild",
            description="Disk d1 fails; RAID rebuild degrades pool P1 / volume V1",
            ground_truth=("raid-rebuild-degradation",),
            critical_modules=("SD",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


# ---------------------------------------------------------------------------
# Streaming scenarios (repro.stream): intermittent and staggered faults that
# exercise online detection latency, incident dedup and cooldown
# ---------------------------------------------------------------------------
def scenario_flapping_san_misconfiguration(
    hours: float = 12.0,
    seed: int = 41,
    period_s: float = 3600.0,
    duty_cycle: float = 0.5,
) -> Scenario:
    """A SAN misconfiguration whose offending workload comes and goes.

    The misconfigured volume V' is created once (volume/zone/LUN events fire
    at the first on-window), but the application load on it runs on a
    ``duty_cycle`` on/off cycle via :meth:`FaultInjector.intermittent`.  Query
    runs inside on-windows degrade; runs inside off-windows stay healthy —
    so an online detector fires once per on-window and incident dedup /
    cooldown must collapse the repeats into few incidents.
    """
    fault_t = _fault_time(hours)
    end_t = hours * 3600.0
    # The exact on-windows the injector will schedule — offline labelling
    # marks precisely the degraded runs; off-window runs stay satisfactory.
    windows = intermittent_windows(fault_t, end_t, period_s, duty_cycle)

    def build() -> Environment:
        env = _base_env(seed)
        injector = FaultInjector(env)
        injector.intermittent(
            at=fault_t,
            until=end_t,
            period_s=period_s,
            duty_cycle=duty_cycle,
            fault=injector.san_misconfiguration,
            write_iops=300.0,
            read_iops=60.0,
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=10,
            name="flapping-san-misconfiguration",
            description=(
                "Intermittent SAN misconfiguration: the offending workload "
                f"flaps with a {duty_cycle:.0%} duty cycle every {period_s:.0f}s"
            ),
            ground_truth=("volume-contention-san-misconfig",),
            critical_modules=("SD",),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=end_t,
        label_windows=windows,
    )


def scenario_staggered_dual_faults(
    hours: float = 12.0, seed: int = 43, multiplier: float = 1.35
) -> Scenario:
    """Two independent faults opening at different times.

    A SAN misconfiguration lands at one third of the timeline and a data
    property change at two thirds — a fleet supervisor should open the first
    incident long before the second fault even exists, and the final report
    must rank both causes (the concurrent-db-san setting, staggered).
    """
    end_t = hours * 3600.0
    fault1_t = end_t / 3.0
    fault2_t = 2.0 * end_t / 3.0

    def build() -> Environment:
        env = _base_env(seed)
        injector = FaultInjector(env)
        injector.san_misconfiguration(at=fault1_t, write_iops=300.0, read_iops=60.0)
        injector.data_property_change(at=fault2_t, table="partsupp", multiplier=multiplier)
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=11,
            name="staggered-dual-faults",
            description=(
                "SAN misconfiguration at t/3 followed by a data property "
                "change at 2t/3"
            ),
            ground_truth=("volume-contention-san-misconfig", "data-property-change"),
            critical_modules=("IA",),
            fault_time=fault1_t,
        ),
        build=build,
        duration_s=end_t,
    )


# ---------------------------------------------------------------------------
# Fleet-correlation building blocks (repro.correlate): a healthy member and a
# shared-fabric switch fault.  Shared fabrics compose these per member; the
# fabric builder layers shared-component faults on top of the healthy base.
# ---------------------------------------------------------------------------
def scenario_healthy(hours: float = 8.0, seed: int = 53) -> Scenario:
    """A fault-free environment: the periodic query against the quiet testbed.

    The base member of a shared fabric — shared-component faults are layered
    on top by :class:`repro.correlate.SharedFabricBuilder` — and the control
    member that must never open an incident.
    """

    def build() -> Environment:
        return _base_env(seed)

    return Scenario(
        info=ScenarioInfo(
            scenario_id=12,
            name="healthy-baseline",
            description="No fault injected; the query runs against the quiet testbed",
            ground_truth=(),
            critical_modules=(),
            fault_time=float("inf"),
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


def scenario_switch_degradation(
    hours: float = 8.0,
    seed: int = 47,
    switch_id: str = "fcsw-core",
    extra_latency_ms: float = 3.0,
) -> Scenario:
    """A fabric-switch degradation slowing every I/O that transits it.

    There is no database-level symptom and no volume-creation event — the
    only configuration-free signal is the switch's error frames plus the
    uniform latency shift on every volume behind the fabric.  One environment
    alone cannot tell this from generic SAN contention; a shared fabric of
    environments all degrading at once can (:mod:`repro.correlate`).
    """
    fault_t = _fault_time(hours)

    def build() -> Environment:
        env = _base_env(seed)
        FaultInjector(env).switch_degradation(
            at=fault_t, switch_id=switch_id, extra_latency_ms=extra_latency_ms
        )
        return env

    return Scenario(
        info=ScenarioInfo(
            scenario_id=13,
            name="switch-degradation",
            description=(
                f"Fabric switch {switch_id} degrades; every volume behind the "
                "fabric pays the extra transit latency"
            ),
            ground_truth=(),
            critical_modules=(),
            fault_time=fault_t,
        ),
        build=build,
        duration_s=hours * 3600.0,
    )


def all_table1_scenarios(hours: float = 24.0) -> list[Scenario]:
    """The five Table-1 scenarios, in order."""
    return [
        scenario_san_misconfiguration(hours=hours),
        scenario_two_external_workloads(hours=hours),
        scenario_data_property_change(hours=hours),
        scenario_concurrent_db_san(hours=hours),
        scenario_lock_contention(hours=hours),
    ]
