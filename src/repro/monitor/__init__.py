"""Monitoring substrate: noisy sampled metrics, events, config, run store.

Every store accepts an optional ``backend`` (any
:class:`repro.storage.StorageBackend`) through which mutations are
journalled; :class:`repro.storage.TelemetryStore` is the facade that wires
all four to one backend and adds ``open(state_dir)`` durability.
"""

from .timeseries import MetricStore, Sample
from .events import DB_EVENT_KINDS, EventLog, EventRecord
from .configstore import ConfigChange, ConfigStore, flatten
from .runstore import RunStore
from .collector import Collector, MetricTap, MonitoringStores, RunTap, DB_COMPONENT

__all__ = [
    "MetricStore",
    "Sample",
    "EventLog",
    "EventRecord",
    "DB_EVENT_KINDS",
    "ConfigStore",
    "ConfigChange",
    "flatten",
    "RunStore",
    "Collector",
    "MetricTap",
    "RunTap",
    "MonitoringStores",
    "DB_COMPONENT",
]
