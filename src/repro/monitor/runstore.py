"""Store of recorded query runs with satisfactory/unsatisfactory labelling.

The diagnosis workflow starts with the administrator marking runs — either
directly ("run 17 was bad") or declaratively ("every run over 30 minutes is
unsatisfactory", "all runs between 2 PM and 3 PM were bad").  The run store
holds the per-run APG annotations (operator times, record counts, metrics)
and implements both labelling styles.

When wired to a :class:`repro.storage.StorageBackend`, every added run and
every label mutation is journalled (runs are serialised losslessly via
:mod:`repro.storage.serializers`), so a reopened store replays to the exact
same run set *and* the exact labels that were in force at close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..db.executor import QueryRun
from ..storage.keyspaces import RUNS
from ..storage.serializers import run_from_dict, run_to_dict

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["RunStore"]


class RunStore:
    """Recorded :class:`QueryRun` objects grouped by query name."""

    def __init__(
        self,
        backend: "StorageBackend | None" = None,
        keyspace: str = RUNS,
    ) -> None:
        self._runs: dict[str, QueryRun] = {}
        self.backend = backend
        self.keyspace = keyspace
        self._replaying = False

    # -- ingestion -----------------------------------------------------------
    def add(self, run: QueryRun) -> QueryRun:
        if run.run_id in self._runs:
            raise ValueError(f"duplicate run id {run.run_id!r}")
        self._runs[run.run_id] = run
        self._journal(
            {
                "t": run.start_time,
                "k": run.query_name,
                "kind": "run",
                "run": run_to_dict(run),
            }
        )
        return run

    def extend(self, runs: Iterable[QueryRun]) -> None:
        for run in runs:
            self.add(run)

    # -- queries ---------------------------------------------------------------
    def get(self, run_id: str) -> QueryRun:
        try:
            return self._runs[run_id]
        except KeyError:
            raise KeyError(f"unknown run {run_id!r}") from None

    def runs(self, query_name: str | None = None) -> list[QueryRun]:
        out = [
            r
            for r in self._runs.values()
            if query_name is None or r.query_name == query_name
        ]
        return sorted(out, key=lambda r: r.start_time)

    def runs_between(self, query_name: str, start: float, end: float) -> list[QueryRun]:
        return [r for r in self.runs(query_name) if start <= r.start_time <= end]

    def satisfactory_runs(self, query_name: str) -> list[QueryRun]:
        return [r for r in self.runs(query_name) if r.satisfactory is True]

    def unsatisfactory_runs(self, query_name: str) -> list[QueryRun]:
        return [r for r in self.runs(query_name) if r.satisfactory is False]

    # -- labelling -------------------------------------------------------------
    def mark(self, run_id: str, satisfactory: bool) -> None:
        """Direct labelling of one run (the Figure-3 check-box)."""
        run = self.get(run_id)
        run.satisfactory = satisfactory
        self._journal(
            {
                "t": run.start_time,
                "k": run.query_name,
                "kind": "label",
                "run_id": run_id,
                "satisfactory": satisfactory,
            }
        )

    def label_by_rule(
        self, query_name: str, unsatisfactory_if: Callable[[QueryRun], bool]
    ) -> tuple[int, int]:
        """Declarative labelling; returns (n_satisfactory, n_unsatisfactory)."""
        good = bad = 0
        for run in self.runs(query_name):
            if unsatisfactory_if(run):
                self.mark(run.run_id, False)
                bad += 1
            else:
                self.mark(run.run_id, True)
                good += 1
        return good, bad

    def label_by_duration(self, query_name: str, max_duration_s: float) -> tuple[int, int]:
        """"Runs longer than X are unsatisfactory" (the paper's example rule)."""
        return self.label_by_rule(query_name, lambda r: r.duration > max_duration_s)

    def label_by_window(
        self, query_name: str, bad_start: float, bad_end: float
    ) -> tuple[int, int]:
        """"Runs from 2 PM to 3 PM were unsatisfactory"-style labelling."""
        return self.label_by_rule(
            query_name, lambda r: bad_start <= r.start_time <= bad_end
        )

    def __len__(self) -> int:
        return len(self._runs)

    # -- persistence -----------------------------------------------------
    def _journal(self, record: dict) -> None:
        if self.backend is not None and not self._replaying:
            self.backend.append(self.keyspace, record)

    def replay_from_backend(self) -> int:
        """Rebuild runs + labels from the backend journal (on open)."""
        if self.backend is None:
            return 0
        self._replaying = True
        applied = 0
        try:
            for rec in self.backend.scan(self.keyspace):
                if rec.get("kind") == "run":
                    self.add(run_from_dict(rec["run"]))
                elif rec.get("kind") == "label":
                    self.mark(rec["run_id"], rec["satisfactory"])
                applied += 1
        finally:
            self._replaying = False
        return applied
