"""Time-series metric store with interval sampling and measurement noise.

The paper's second challenge (Section 1.1) is *inaccuracy in monitoring
data*: production monitors sample at 5-minute (or coarser) intervals, so
instantaneous spikes get averaged away, and values carry noise.  This store
reproduces both distortions:

* raw per-tick values pushed by the collector are **averaged per sampling
  bucket** (default 300 s), so a 60-second burst inside a bucket shrinks by
  the duty cycle before DIADS ever sees it;
* each emitted sample receives deterministic multiplicative Gaussian noise
  (seeded per series and bucket, so reruns are reproducible).

DIADS only ever reads the bucketed, noisy view — never the raw values — just
like the real tool only sees what IBM TPC recorded.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..storage.keyspaces import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["Sample", "MetricStore"]


@dataclass(frozen=True)
class Sample:
    """One monitored observation."""

    time: float
    value: float


def _bucket_noise(seed: int, key: tuple[str, str], bucket: int, sigma: float) -> float:
    """Deterministic multiplicative noise for one series bucket."""
    if sigma <= 0.0:
        return 1.0
    digest = hashlib.blake2b(
        f"{seed}|{key[0]}|{key[1]}|{bucket}".encode(), digest_size=8
    ).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "big"))
    return float(max(rng.normal(loc=1.0, scale=sigma), 0.0))


@dataclass
class MetricStore:
    """Bucketing, noising metric store keyed by (component_id, metric)."""

    interval_s: float = 300.0
    noise_sigma: float = 0.05
    seed: int = 0
    # guarded-by: _cache_lock
    _raw: dict[tuple[str, str], list[Sample]] = field(default_factory=dict, repr=False)
    # guarded-by: _cache_lock
    _cache: dict[tuple[str, str], list[Sample]] = field(default_factory=dict, repr=False)
    #: Guards lazy _cache fills *and* the append path: concurrent diagnoses
    #: (diagnose_many) read the store from worker threads while series()
    #: populates the cache, and streaming supervisors append from other
    #: worker threads.  Without a locked append, record() could invalidate a
    #: key concurrently with a series() fill and leave a stale cache behind.
    _cache_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Optional :class:`repro.storage.StorageBackend` the store journals raw
    #: observations through (duck-typed so the monitor layer stays import-
    #: cycle free).  None keeps the historical fully-in-memory behaviour.
    backend: "StorageBackend | None" = field(default=None, compare=False)
    keyspace: str = METRICS
    _replaying: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        from ..devtools.sanitize import instrument_guarded

        instrument_guarded(self)  # no-op unless REPRO_SANITIZE=1

    # -- ingestion -------------------------------------------------------
    def record(self, time: float, component_id: str, metric: str, value: float) -> None:
        """Push one raw observation (called by the collector each tick).

        Delegates to :meth:`append_many`, so single-sample appends go through
        the exact same locked/journalled path as batches — there is no side
        door that could skip cache invalidation or the backend journal.
        """
        self.append_many(((time, component_id, metric, value),))

    def append_many(
        self, observations: Iterable[tuple[float, str, str, float]]
    ) -> int:
        """Batch-push ``(time, component_id, metric, value)`` observations.

        The single ingestion code path: takes the store lock once for the
        whole batch (per-tick collector writes of tens of series stay cheap
        while remaining safe against concurrent :meth:`series` reads),
        journals each observation through the backend, and returns how many
        were appended.
        """
        appended = 0
        journal: list[dict] | None = (
            [] if self.backend is not None and not self._replaying else None
        )
        with self._cache_lock:
            for time, component_id, metric, value in observations:
                key = (component_id, metric)
                self._raw.setdefault(key, []).append(
                    Sample(time=time, value=float(value))
                )
                self._cache.pop(key, None)
                if journal is not None:
                    journal.append(
                        {
                            "t": time,
                            "k": f"{component_id}/{metric}",
                            "c": component_id,
                            "m": metric,
                            "v": float(value),
                        }
                    )
                appended += 1
            if journal:
                self.backend.append_many(self.keyspace, journal)
        return appended

    # -- persistence -----------------------------------------------------
    def replay_from_backend(self) -> int:
        """Rebuild the raw series from the backend journal (on open).

        Records are re-applied through the normal ingestion path with
        journalling suppressed, so a replayed store is indistinguishable
        from one that recorded the observations live.
        """
        if self.backend is None:
            return 0
        self._replaying = True
        try:
            return self.append_many(
                (rec["t"], rec["c"], rec["m"], rec["v"])
                for rec in self.backend.scan(self.keyspace)
            )
        finally:
            self._replaying = False

    # -- monitored view ----------------------------------------------------
    def series(self, component_id: str, metric: str) -> list[Sample]:
        """The bucketed, noisy series DIADS consumes.

        Each sample's time is the bucket midpoint; its value is the bucket
        mean of the raw pushes times the bucket's noise factor.
        """
        key = (component_id, metric)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            raw = self._raw.get(key, [])
            if not raw:
                return []
            buckets: dict[int, list[float]] = {}
            for sample in raw:
                buckets.setdefault(
                    int(sample.time // self.interval_s), []
                ).append(sample.value)
            out = []
            for bucket in sorted(buckets):
                mean = float(np.mean(buckets[bucket]))
                noise = _bucket_noise(self.seed, key, bucket, self.noise_sigma)
                midpoint = (bucket + 0.5) * self.interval_s
                out.append(Sample(time=midpoint, value=mean * noise))
            self._cache[key] = out
            return out

    def values_between(
        self, component_id: str, metric: str, start: float, end: float
    ) -> list[float]:
        """Sample values whose bucket midpoint falls in [start, end]."""
        return [
            s.value
            for s in self.series(component_id, metric)
            if start <= s.time <= end
        ]

    def window_mean(
        self, component_id: str, metric: str, start: float, end: float
    ) -> float | None:
        """Mean monitored value over a window; None when nothing sampled.

        When the window is narrower than a sampling bucket, the overlapping
        bucket's value is used — exactly the blur the paper warns about.
        """
        values = self.values_between(component_id, metric, start, end)
        if not values:
            padded = self.values_between(
                component_id,
                metric,
                start - self.interval_s / 2.0,
                end + self.interval_s / 2.0,
            )
            if not padded:
                return None
            return float(np.mean(padded))
        return float(np.mean(values))

    # -- introspection -------------------------------------------------------
    def components(self) -> set[str]:
        return {cid for cid, _ in self._raw}

    def metrics_for(self, component_id: str) -> set[str]:
        return {metric for cid, metric in self._raw if cid == component_id}

    def keys(self) -> list[tuple[str, str]]:
        return sorted(self._raw)

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._raw.values())
