"""Configuration snapshot store with diffing.

The APG includes "(iii) changes in configuration and connectivity information
over time".  The config store keeps timestamped snapshots per scope
(``db_catalog``, ``db_config``, ``san``, ``access``) and can report the
flattened set of changes between two points in time — the raw material for
Module PD's plan-change analysis and Module SD's misconfiguration symptoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..storage.keyspaces import CONFIG

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["ConfigChange", "ConfigStore", "flatten"]


def flatten(value: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten nested dicts/lists into dot-path → scalar leaves."""
    out: dict[str, Any] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            out.update(flatten(value[key], f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            out.update(flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix or "value"] = value
    return out


@dataclass(frozen=True)
class ConfigChange:
    """One changed configuration leaf between two snapshots."""

    scope: str
    path: str
    before: Any
    after: Any

    @property
    def kind(self) -> str:
        if self.before is None:
            return "added"
        if self.after is None:
            return "removed"
        return "modified"

    def describe(self) -> str:
        if self.kind == "added":
            return f"{self.scope}:{self.path} added = {self.after!r}"
        if self.kind == "removed":
            return f"{self.scope}:{self.path} removed (was {self.before!r})"
        return f"{self.scope}:{self.path} changed {self.before!r} -> {self.after!r}"


class ConfigStore:
    """Timestamped snapshots per scope.

    Snapshots are stored (and journalled) in flattened form; out-of-order
    ``take_snapshot`` calls are accepted and kept sorted by time.
    """

    def __init__(
        self,
        backend: "StorageBackend | None" = None,
        keyspace: str = CONFIG,
    ) -> None:
        self._snapshots: dict[str, list[tuple[float, dict[str, Any]]]] = {}
        self.backend = backend
        self.keyspace = keyspace
        self._replaying = False

    def take_snapshot(self, time: float, scope: str, snapshot: dict) -> None:
        self._insert_flat(time, scope, flatten(snapshot))

    def _insert_flat(self, time: float, scope: str, flat: dict[str, Any]) -> None:
        """Insert an already-flattened snapshot (journal + replay path)."""
        self._snapshots.setdefault(scope, []).append((time, flat))
        self._snapshots[scope].sort(key=lambda pair: pair[0])
        if self.backend is not None and not self._replaying:
            self.backend.append(
                self.keyspace, {"t": time, "k": scope, "flat": flat}
            )

    def snapshots(self) -> Iterator[tuple[str, float, dict[str, Any]]]:
        """Every stored snapshot as ``(scope, time, flattened)`` in time order."""
        for scope in self.scopes():
            for when, flat in self._snapshots[scope]:
                yield scope, when, flat

    def replay_from_backend(self) -> int:
        """Rebuild the snapshot history from the backend journal (on open)."""
        if self.backend is None:
            return 0
        self._replaying = True
        applied = 0
        try:
            for rec in self.backend.scan(self.keyspace):
                self._insert_flat(rec["t"], rec["k"], rec["flat"])
                applied += 1
        finally:
            self._replaying = False
        return applied

    def scopes(self) -> list[str]:
        return sorted(self._snapshots)

    def snapshot_at(self, scope: str, time: float) -> dict[str, Any] | None:
        """Latest snapshot at or before ``time`` (None if none exists)."""
        best = None
        for when, snap in self._snapshots.get(scope, []):
            if when <= time:
                best = snap
        return best

    def diff(self, scope: str, t0: float, t1: float) -> list[ConfigChange]:
        """Changes in ``scope`` between the snapshots in force at t0 and t1."""
        before = self.snapshot_at(scope, t0) or {}
        after = self.snapshot_at(scope, t1) or {}
        changes = []
        for path in sorted(set(before) | set(after)):
            old, new = before.get(path), after.get(path)
            if old != new:
                changes.append(ConfigChange(scope=scope, path=path, before=old, after=new))
        return changes

    def changes_between(self, t0: float, t1: float) -> list[ConfigChange]:
        """All changes across every scope between t0 and t1."""
        out: list[ConfigChange] = []
        for scope in self.scopes():
            out.extend(self.diff(scope, t0, t1))
        return out
