"""Collector: pulls simulator state into the monitoring stores each tick.

Plays the role of IBM TotalStorage Productivity Center in Figure 5: it
records SAN component metrics, server metrics and database metrics into the
(noisy, bucketed) metric store, events into the event log, and configuration
snapshots into the config store.  DIADS reads *only* these stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.executor import QueryRun
from ..san.iomodel import SanPerfSample
from .configstore import ConfigStore
from .events import EventLog
from .runstore import RunStore
from .timeseries import MetricStore

__all__ = ["MonitoringStores", "Collector"]

#: Pseudo-component id under which database-level metrics are recorded.
DB_COMPONENT = "db"


@dataclass
class MonitoringStores:
    """The bundle of stores DIADS diagnoses from."""

    metrics: MetricStore = field(default_factory=MetricStore)
    events: EventLog = field(default_factory=EventLog)
    config: ConfigStore = field(default_factory=ConfigStore)
    runs: RunStore = field(default_factory=RunStore)


@dataclass
class Collector:
    """Writes simulator outputs into the monitoring stores."""

    stores: MonitoringStores

    # -- SAN -------------------------------------------------------------
    def collect_san(self, time: float, sample: SanPerfSample) -> None:
        for (component_id, metric), value in sample.values.items():
            self.stores.metrics.record(time, component_id, metric, value)

    # -- server ------------------------------------------------------------
    def collect_server(
        self,
        time: float,
        server_id: str,
        cpu_pct: float,
        memory_pct: float = 35.0,
        processes: float = 180.0,
    ) -> None:
        m = self.stores.metrics
        m.record(time, server_id, "cpuUsagePct", cpu_pct)
        m.record(time, server_id, "cpuUsageMhz", cpu_pct * 24.0)
        m.record(time, server_id, "physicalMemoryUsagePct", memory_pct)
        m.record(time, server_id, "heapMemoryUsageKb", memory_pct * 1024.0)
        m.record(time, server_id, "kernelMemoryKb", 65536.0)
        m.record(time, server_id, "memorySwappedKb", 0.0)
        m.record(time, server_id, "reservedMemoryCapacityKb", 8.0 * 1024.0 * 1024.0)
        m.record(time, server_id, "processes", processes)
        m.record(time, server_id, "threads", processes * 4.0)
        m.record(time, server_id, "handles", processes * 30.0)

    # -- network ----------------------------------------------------------
    def collect_network(self, time: float, switch_id: str, bytes_moved: float) -> None:
        m = self.stores.metrics
        m.record(time, switch_id, "bytesTransmitted", bytes_moved)
        m.record(time, switch_id, "bytesReceived", bytes_moved)
        m.record(time, switch_id, "packetsTransmitted", bytes_moved / 2048.0)
        m.record(time, switch_id, "packetsReceived", bytes_moved / 2048.0)
        for metric in ("lipCount", "nosCount", "errorFrames", "dumpedFrames",
                       "linkFailures", "crcErrors", "addressErrors"):
            m.record(time, switch_id, metric, 0.0)

    # -- database -----------------------------------------------------------
    def collect_query_run(self, run: QueryRun) -> None:
        """Record a finished run: the run itself + its DB metrics as series."""
        self.stores.runs.add(run)
        time = run.end_time
        for metric, value in run.db_metrics.items():
            self.stores.metrics.record(time, DB_COMPONENT, metric, value)

    def collect_db_tick(self, time: float, locks_held: float) -> None:
        """Between-runs database heartbeat metrics."""
        self.stores.metrics.record(time, DB_COMPONENT, "locksHeld", locks_held)

    # -- config + events -------------------------------------------------------
    def snapshot_config(self, time: float, scope: str, snapshot: dict) -> None:
        self.stores.config.take_snapshot(time, scope, snapshot)
