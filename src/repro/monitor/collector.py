"""Collector: pulls simulator state into the monitoring stores each tick.

Plays the role of IBM TotalStorage Productivity Center in Figure 5: it
records SAN component metrics, server metrics and database metrics into the
(noisy, bucketed) metric store, events into the event log, and configuration
snapshots into the config store.  DIADS reads *only* these stores.

The collector also carries an optional **streaming tap**: observer callbacks
invoked once per appended metric observation (and once per recorded query
run).  Online detectors (:mod:`repro.stream`) subscribe to the tap so they
see every sample the moment it lands, without polling the stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..db.executor import QueryRun
from ..san.iomodel import SanPerfSample
from .configstore import ConfigStore
from .events import EventLog
from .runstore import RunStore
from .timeseries import MetricStore

__all__ = ["MonitoringStores", "Collector", "MetricTap", "RunTap"]

#: Pseudo-component id under which database-level metrics are recorded.
DB_COMPONENT = "db"

#: Observer over raw metric appends: fn(time, component_id, metric, value).
MetricTap = Callable[[float, str, str, float], None]

#: Observer over recorded query runs: fn(run).
RunTap = Callable[[QueryRun], None]


@dataclass
class MonitoringStores:
    """The bundle of stores DIADS diagnoses from."""

    metrics: MetricStore = field(default_factory=MetricStore)
    events: EventLog = field(default_factory=EventLog)
    config: ConfigStore = field(default_factory=ConfigStore)
    runs: RunStore = field(default_factory=RunStore)


@dataclass
class Collector:
    """Writes simulator outputs into the monitoring stores."""

    stores: MonitoringStores
    _metric_taps: list[MetricTap] = field(default_factory=list, repr=False)
    _run_taps: list[RunTap] = field(default_factory=list, repr=False)

    # -- streaming tap -----------------------------------------------------
    def add_metric_tap(self, tap: MetricTap) -> MetricTap:
        """Subscribe to every raw metric append; returns the tap for removal."""
        self._metric_taps.append(tap)
        return tap

    def add_run_tap(self, tap: RunTap) -> RunTap:
        """Subscribe to every recorded query run; returns the tap for removal."""
        self._run_taps.append(tap)
        return tap

    def remove_tap(self, tap: MetricTap | RunTap) -> None:
        if tap in self._metric_taps:
            self._metric_taps.remove(tap)
        if tap in self._run_taps:
            self._run_taps.remove(tap)

    def _emit(self, time: float, component_id: str, metric: str, value: float) -> None:
        """One locked store append, then the observer fan-out."""
        self.stores.metrics.record(time, component_id, metric, value)
        for tap in self._metric_taps:
            tap(time, component_id, metric, value)

    def _emit_many(self, observations: list[tuple[float, str, str, float]]) -> None:
        """Batch append (one lock acquisition), then the observer fan-out."""
        self.stores.metrics.append_many(observations)
        for tap in self._metric_taps:
            for time, component_id, metric, value in observations:
                tap(time, component_id, metric, value)

    # -- SAN -------------------------------------------------------------
    def collect_san(self, time: float, sample: SanPerfSample) -> None:
        self._emit_many(
            [
                (time, component_id, metric, value)
                for (component_id, metric), value in sample.values.items()
            ]
        )

    # -- server ------------------------------------------------------------
    def collect_server(
        self,
        time: float,
        server_id: str,
        cpu_pct: float,
        memory_pct: float = 35.0,
        processes: float = 180.0,
    ) -> None:
        self._emit_many(
            [
                (time, server_id, "cpuUsagePct", cpu_pct),
                (time, server_id, "cpuUsageMhz", cpu_pct * 24.0),
                (time, server_id, "physicalMemoryUsagePct", memory_pct),
                (time, server_id, "heapMemoryUsageKb", memory_pct * 1024.0),
                (time, server_id, "kernelMemoryKb", 65536.0),
                (time, server_id, "memorySwappedKb", 0.0),
                (time, server_id, "reservedMemoryCapacityKb", 8.0 * 1024.0 * 1024.0),
                (time, server_id, "processes", processes),
                (time, server_id, "threads", processes * 4.0),
                (time, server_id, "handles", processes * 30.0),
            ]
        )

    # -- network ----------------------------------------------------------
    def collect_network(self, time: float, switch_id: str, bytes_moved: float) -> None:
        observations = [
            (time, switch_id, "bytesTransmitted", bytes_moved),
            (time, switch_id, "bytesReceived", bytes_moved),
            (time, switch_id, "packetsTransmitted", bytes_moved / 2048.0),
            (time, switch_id, "packetsReceived", bytes_moved / 2048.0),
        ]
        observations.extend(
            (time, switch_id, metric, 0.0)
            for metric in ("lipCount", "nosCount", "errorFrames", "dumpedFrames",
                           "linkFailures", "crcErrors", "addressErrors")
        )
        self._emit_many(observations)

    # -- database -----------------------------------------------------------
    def collect_query_run(self, run: QueryRun) -> None:
        """Record a finished run: the run itself + its DB metrics as series."""
        self.stores.runs.add(run)
        time = run.end_time
        self._emit_many(
            [
                (time, DB_COMPONENT, metric, value)
                for metric, value in run.db_metrics.items()
            ]
        )
        label_before = run.satisfactory
        for tap in self._run_taps:
            tap(run)
        # A tap that labelled the run (the response-time SLO detector writes
        # run.satisfactory directly) bypassed RunStore.mark(); re-issue the
        # label through the store so it reaches the durability journal — the
        # run record itself was journalled at add() time, before the label.
        if run.satisfactory is not label_before and run.satisfactory is not None:
            self.stores.runs.mark(run.run_id, run.satisfactory)

    def collect_db_tick(self, time: float, locks_held: float) -> None:
        """Between-runs database heartbeat metrics."""
        self._emit(time, DB_COMPONENT, "locksHeld", locks_held)

    # -- config + events -------------------------------------------------------
    def snapshot_config(self, time: float, scope: str, snapshot: dict) -> None:
        self.stores.config.take_snapshot(time, scope, snapshot)
