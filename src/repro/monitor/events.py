"""Unified event log across the database and SAN layers.

APGs record configuration changes and incidents from both layers; Module SD
treats them as symptoms with temporal structure (e.g. *the zone changed
before the slowdown began*).  The log stores normalised
:class:`EventRecord` rows regardless of origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..san.events import SanEvent
from ..storage.keyspaces import EVENTS

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["EventRecord", "EventLog", "DB_EVENT_KINDS"]

#: Database-layer event kinds (SAN kinds come from repro.san.events).
DB_EVENT_KINDS = (
    "index_created",
    "index_dropped",
    "db_config_changed",
    "stats_updated",
    "dml_batch",
    "lock_escalation",
)


@dataclass(frozen=True)
class EventRecord:
    """A timestamped event from either layer."""

    time: float
    kind: str
    component_id: str
    layer: str  # "db" | "san"
    details: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        suffix = f" ({extra})" if extra else ""
        return f"[t={self.time:.0f}] {self.layer}/{self.kind} @ {self.component_id}{suffix}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": self.time,
            "k": self.component_id,
            "kind": self.kind,
            "layer": self.layer,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EventRecord":
        return cls(
            time=data["t"],
            kind=data["kind"],
            component_id=data["k"],
            layer=data["layer"],
            details=dict(data.get("details", {})),
        )


class EventLog:
    """Append-only event store with window/type queries."""

    def __init__(
        self,
        backend: "StorageBackend | None" = None,
        keyspace: str = EVENTS,
    ) -> None:
        self._events: list[EventRecord] = []
        self.backend = backend
        self.keyspace = keyspace
        self._replaying = False

    def add(self, event: EventRecord) -> EventRecord:
        self._events.append(event)
        if self.backend is not None and not self._replaying:
            self.backend.append(self.keyspace, event.to_dict())
        return event

    def replay_from_backend(self) -> int:
        """Rebuild the event list from the backend journal (on open)."""
        if self.backend is None:
            return 0
        self._replaying = True
        applied = 0
        try:
            for rec in self.backend.scan(self.keyspace):
                self.add(EventRecord.from_dict(rec))
                applied += 1
        finally:
            self._replaying = False
        return applied

    def add_san_event(self, event: SanEvent) -> EventRecord:
        return self.add(
            EventRecord(
                time=event.time,
                kind=event.kind.value,
                component_id=event.component_id,
                layer="san",
                details=dict(event.details),
            )
        )

    def add_db_event(
        self, time: float, kind: str, component_id: str, **details: Any
    ) -> EventRecord:
        if kind not in DB_EVENT_KINDS:
            raise ValueError(f"unknown db event kind {kind!r}")
        return self.add(
            EventRecord(time=time, kind=kind, component_id=component_id, layer="db", details=details)
        )

    # -- queries -----------------------------------------------------------
    @property
    def events(self) -> list[EventRecord]:
        return sorted(self._events, key=lambda e: e.time)

    def in_window(self, start: float, end: float) -> list[EventRecord]:
        return [e for e in self.events if start <= e.time <= end]

    def of_kind(self, *kinds: str) -> list[EventRecord]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def before(self, time: float) -> list[EventRecord]:
        return [e for e in self.events if e.time < time]

    def for_component(self, component_id: str) -> list[EventRecord]:
        return [e for e in self.events if e.component_id == component_id]

    def extend(self, events: Iterable[EventRecord]) -> None:
        for event in events:
            self.add(event)

    def __len__(self) -> int:
        return len(self._events)
