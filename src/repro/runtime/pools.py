"""Shared, long-lived worker pools for the execution substrate.

Before the runtime layer existed, every fan-out site (``FleetSupervisor.tick``,
``DiagnosisPipeline.diagnose_many``, ``repro batch``) spun up a throwaway
:class:`~concurrent.futures.ThreadPoolExecutor` per call — thread churn on
the hot loop and no way to bound *total* concurrency across subsystems.
:class:`WorkerPool` wraps one long-lived executor behind a small surface
(``submit`` / ``map_bounded``), and :func:`shared_pool` hands every caller in
the process the same instance, so the supervisor's advance phases and the
pipeline's diagnosis waves draw from one budget of threads.

:func:`shared_pool` also selects the execution *backend*: ``"threads"`` (this
module), ``"process"`` (:mod:`repro.runtime.procpool`, true parallelism for
CPU-bound simulation), or ``"auto"`` (processes when the host has the cores
to pay for the handoff).  ``REPRO_POOL`` sets the default; ``repro watch`` /
``repro serve`` expose it as ``--pool``.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterable, TypeVar

from ..obs import trace as obs_trace

__all__ = [
    "WorkerPool",
    "resolve_pool_backend",
    "shared_pool",
    "reset_shared_pool",
]

POOL_BACKENDS = ("threads", "process", "auto")

T = TypeVar("T")
R = TypeVar("R")


def _default_workers() -> int:
    return min(32, (os.cpu_count() or 4) + 4)


def _scoped_task(fn: Callable[..., R]) -> Callable[..., R]:
    """Wrap a submitted callable in a sanitizer task scope.

    Under ``REPRO_SANITIZE=1`` every pool task runs inside
    :func:`repro.devtools.sanitize.task_scope`, so lock violations are
    attributed to the task that hit them and a task returning with a lock
    still held is flagged as a leak before it can deadlock a later task on
    the same pool thread.
    """
    from ..devtools import sanitize

    label = getattr(fn, "__qualname__", None) or repr(fn)

    def task(*args: Any, **kwargs: Any) -> R:
        with sanitize.task_scope(label):
            return fn(*args, **kwargs)

    return task


class WorkerPool:
    """A long-lived thread pool with bounded fan-out helpers.

    The pool is deliberately dumb: threads, not processes (the workloads are
    numpy-heavy simulation steps and store scans that release the GIL often
    enough), created once and reused for the lifetime of the owner.  The
    interesting part is :meth:`map_bounded`, which keeps at most ``limit``
    items in flight — the primitive both ``diagnose_many`` and the barriered
    ``tick`` path use instead of constructing executors per call.
    """

    backend = "threads"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        thread_name_prefix: str = "repro-runtime",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or _default_workers()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix=thread_name_prefix
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        # Every task is in exactly one of {queued, active, completed, failed,
        # cancelled}; transitions are counted where they happen, so the
        # invariant  submitted == queued + active + completed + failed +
        # cancelled  holds at every instant the lock is released.
        # guarded-by: _stats_lock
        self._submitted = 0
        # guarded-by: _stats_lock
        self._queued = 0
        # guarded-by: _stats_lock
        self._active = 0
        # guarded-by: _stats_lock
        self._completed = 0
        # guarded-by: _stats_lock
        self._failed = 0
        # guarded-by: _stats_lock
        self._cancelled = 0

    # -- submission ------------------------------------------------------
    def _counted_task(self, fn: Callable[..., R]) -> Callable[..., R]:
        def task(*args: Any, **kwargs: Any) -> R:
            with self._stats_lock:
                self._queued -= 1
                self._active += 1
            try:
                result = fn(*args, **kwargs)
            except BaseException:
                with self._stats_lock:
                    self._active -= 1
                    self._failed += 1
                raise
            with self._stats_lock:
                self._active -= 1
                self._completed += 1
            return result

        return task

    def _note_done(self, future: "Future[Any]") -> None:
        # A future only cancels while still queued (`Future.cancel` fails once
        # the task starts), so exactly one of this transition or the
        # queued→active one in `_counted_task` fires per task — never both.
        if future.cancelled():
            with self._stats_lock:
                self._queued -= 1
                self._cancelled += 1

    def submit(self, fn: Callable[..., R], /, *args: Any, **kwargs: Any) -> "Future[R]":
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        from ..devtools import sanitize  # dev-only layer; keep off the import path

        if sanitize.is_enabled():
            fn = _scoped_task(fn)
        # Carry the caller's open span across the thread hop (no-op when
        # observability is off), then count the run under the stats lock.
        fn = self._counted_task(obs_trace.wrap_task(fn))
        with self._stats_lock:
            self._submitted += 1
            self._queued += 1
        future = self._executor.submit(fn, *args, **kwargs)
        future.add_done_callback(self._note_done)
        return future

    def stats(self) -> dict:
        """Point-in-time pool counters: queue depth, utilisation, outcomes.

        ``queued`` is work submitted but not yet running (and not resolved by
        cancellation), counted at each transition rather than derived — the
        old ``submitted - active - ...`` arithmetic double-counted a task
        cancelled after submission (clamping to zero hid the drift).
        """
        with self._stats_lock:
            submitted = self._submitted
            queued = self._queued
            active = self._active
            completed = self._completed
            failed = self._failed
            cancelled = self._cancelled
        return {
            "backend": self.backend,
            "max_workers": self.max_workers,
            "submitted": submitted,
            "queued": queued,
            "active": active,
            "completed": completed,
            "failed": failed,
            "cancelled": cancelled,
            "utilisation": active / self.max_workers if self.max_workers else 0.0,
        }

    def map_bounded(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        limit: int | None = None,
    ) -> list[R]:
        """Apply ``fn`` to every item with at most ``limit`` in flight.

        Results come back in item order; the first exception propagates after
        the in-flight work drains.  ``limit`` defaults to the pool width, and
        is clamped to at least 1 so callers may pass a computed 0 (the empty-
        fleet sizing bug this API replaces).
        """
        todo = list(items)
        if not todo:
            return []
        limit = max(1, min(limit or self.max_workers, len(todo)))
        results: list[Any] = [None] * len(todo)
        stream = iter(enumerate(todo))
        in_flight: dict[Future, int] = {
            self.submit(fn, item): idx
            for idx, item in itertools.islice(stream, limit)
        }
        error: BaseException | None = None
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            refill = 0
            for future in done:
                idx = in_flight.pop(future)
                exc = future.exception()
                if exc is not None:
                    error = error or exc
                else:
                    results[idx] = future.result()
                refill += 1
            if error is None:
                for idx, item in itertools.islice(stream, refill):
                    in_flight[self.submit(fn, item)] = idx
        if error is not None:
            raise error
        return results

    # -- lifecycle -------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


_shared: WorkerPool | None = None
_shared_lock = threading.Lock()


def resolve_pool_backend(
    choice: str | None = None, *, fleet_size: int | None = None
) -> str:
    """Resolve a pool-backend choice to a concrete ``"threads"``/``"process"``.

    Precedence: explicit ``choice`` (CLI flag / API argument), then the
    ``REPRO_POOL`` environment variable, then ``"threads"``.  ``"auto"``
    picks processes only when the host has enough cores (≥ 4) for parallel
    simulation to beat the JSON handoff cost, and — when the fleet size is
    known — enough environments to keep those cores busy.
    """
    choice = choice or os.environ.get("REPRO_POOL", "").strip() or "threads"
    if choice not in POOL_BACKENDS:
        raise ValueError(
            f"unknown pool backend {choice!r} (expected one of {', '.join(POOL_BACKENDS)})"
        )
    if choice == "auto":
        cores = os.cpu_count() or 1
        if cores >= 4 and (fleet_size is None or fleet_size >= cores):
            return "process"
        return "threads"
    return choice


def _make_pool(backend: str) -> WorkerPool:
    if backend == "process":
        from .procpool import ProcessWorkerPool  # lazy: procpool imports pools

        return ProcessWorkerPool(thread_name_prefix="repro-shared")
    return WorkerPool(thread_name_prefix="repro-shared")


def shared_pool(backend: str | None = None) -> WorkerPool:
    """The process-wide pool every runtime consumer shares.

    Created lazily on first use and shut down at interpreter exit; the
    supervisor, the diagnosis pipeline, and the CLI all fan out through this
    single instance instead of constructing executors per call.

    ``backend`` asks for a specific substrate (``"threads"``, ``"process"``,
    or ``"auto"``; see :func:`resolve_pool_backend`).  When the live shared
    pool is of a different kind it is shut down and replaced, so a caller
    that needs processes (``repro watch --pool process``) gets them even if
    an earlier import already touched the default thread pool.  Callers that
    don't care pass nothing and share whatever exists.
    """
    global _shared
    with _shared_lock:
        wanted = resolve_pool_backend(backend) if backend is not None else None
        if (
            _shared is not None
            and not _shared.closed
            and wanted is not None
            and _shared.backend != wanted
        ):
            _shared.shutdown(wait=False)
            _shared = None
        if _shared is None or _shared.closed:
            _shared = _make_pool(wanted or resolve_pool_backend())
            atexit.register(_shared.shutdown, False)
        return _shared


def reset_shared_pool() -> None:
    """Tear down the shared pool (tests); the next caller gets a fresh one."""
    global _shared
    with _shared_lock:
        if _shared is not None:
            _shared.shutdown(wait=False)
            _shared = None
