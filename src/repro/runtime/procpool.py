"""Process-backed worker pool: the escape hatch from the GIL.

:class:`~repro.runtime.pools.WorkerPool` overlaps CPU-bound
``Environment.advance`` chunks on threads, which buys latency hiding but not
parallelism — one interpreter still executes every simulation step.
:class:`ProcessWorkerPool` keeps the exact ``WorkerPool`` contract (``submit``
/ ``map_bounded`` / ``stats`` / ``shutdown``) and layers a process substrate
underneath it:

* **Long-lived workers, sticky affinity.**  ``submit_task(name, payload,
  affinity=key)`` routes every payload with the same affinity key to the same
  worker process, so per-environment state (the simulator, detector
  ``_Welford`` accumulators) is hydrated once and stays warm; only compact
  JSON deltas cross the boundary afterwards.
* **Serializer-based handoff.**  Payloads and results are JSON documents —
  the task registry is a dotted import path resolved *inside* the worker
  (``"repro.stream.worker:advance_env"``), so nothing is pickled except
  plain strings.  A payload that does not survive ``json.dumps`` fails fast
  with :class:`ProcpoolPayloadError` (the ``procpool-discipline`` lint rule
  catches the obvious object-graph captures statically).
* **Thread front, process back.**  ``submit``/``map_bounded`` keep running
  arbitrary callables on the inherited thread executor; those dispatch
  threads block on worker results, releasing the GIL, so the supervisor's
  driving loops are unchanged while the actual simulation work lands in
  worker processes.

Workers default to the ``fork`` start method (``REPRO_POOL_START``
overrides), start lazily on the first ``submit_task``, and are reaped by
``shutdown``; a worker that dies mid-task fails the in-flight futures routed
to it instead of hanging the dispatcher.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import queue as stdlib_queue
import threading
import traceback
from concurrent.futures import Future
from typing import Any, Callable

from ..obs import worker as obs_worker
from .pools import WorkerPool, _default_workers

__all__ = ["ProcessWorkerPool", "ProcpoolPayloadError", "default_processes"]

#: Reserved envelope keys: when observability is on, the parent wraps the
#: payload as ``{"__obs__": <span context>, "payload": ...}`` and the worker
#: wraps its result as ``{"__obs__": <span buffer + metrics>, "result": ...}``.
#: With observability off nothing is wrapped, so the wire bytes — and the
#: byte-for-byte kill/resume guarantee — are untouched.
_OBS_KEY = "__obs__"

#: The dotted task ``collect_obs`` broadcasts to drain worker buffers.
_OBS_FLUSH_TASK = "repro.obs.worker:flush_task"


class ProcpoolPayloadError(TypeError):
    """A task payload (or result) did not survive JSON serialization."""


def default_processes() -> int:
    return max(1, os.cpu_count() or 1)


# -- worker side ------------------------------------------------------------

_TASK_CACHE: dict[str, Callable[[dict], dict]] = {}


def _resolve_task(name: str) -> Callable[[dict], dict]:
    """Import ``"package.module:function"`` once per worker process."""
    fn = _TASK_CACHE.get(name)
    if fn is None:
        module_name, sep, attr = name.partition(":")
        if not sep or not module_name or not attr:
            raise ValueError(f"task name must look like 'pkg.mod:fn', got {name!r}")
        fn = getattr(importlib.import_module(module_name), attr)
        _TASK_CACHE[name] = fn
    return fn


def _worker_main(worker_id: int, tasks: Any, results: Any) -> None:
    """Worker-process loop: pull (seq, task, payload) triples until sentinel.

    Every outcome — result or failure — is reported back as a JSON string;
    the traceback rides along on failures so the parent-side exception names
    the worker-side frame, not just "task failed".
    """
    while True:
        item = tasks.get()
        if item is None:
            break
        seq, task_name, payload_json = item
        try:
            fn = _resolve_task(task_name)
            payload = json.loads(payload_json)
            obs_ctx = None
            if isinstance(payload, dict) and _OBS_KEY in payload:
                obs_ctx = payload[_OBS_KEY]
                payload = payload["payload"]
            if obs_ctx is not None:
                with obs_worker.task_scope(obs_ctx, task=task_name):
                    out = fn(payload)
                obs_payload = obs_worker.drain()
                if obs_payload is not None:
                    out = {_OBS_KEY: obs_payload, "result": out}
            else:
                out = fn(payload)
            try:
                body = json.dumps(out)
            except TypeError as exc:
                raise ProcpoolPayloadError(
                    f"result of task {task_name!r} is not JSON-able: {exc}"
                ) from None
            results.put((seq, True, body))
        except BaseException as exc:  # noqa: BLE001 - report, never kill the loop
            detail = (
                f"worker {worker_id} task {task_name!r} failed: "
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            )
            results.put((seq, False, detail))


# -- parent side ------------------------------------------------------------


class _Worker:
    """Parent-side record of one worker process and its routing stats."""

    __slots__ = ("index", "process", "tasks", "affinity_keys", "tasks_routed", "handoff_bytes")

    def __init__(self, index: int, process: Any, tasks: Any) -> None:
        self.index = index
        self.process = process
        self.tasks = tasks
        self.affinity_keys = 0
        self.tasks_routed = 0
        self.handoff_bytes = 0


class ProcessWorkerPool(WorkerPool):
    """A ``WorkerPool`` whose real work executes in long-lived processes.

    The thread executor inherited from :class:`WorkerPool` serves two jobs:
    plain ``submit``/``map_bounded`` callables run on it directly (supervisor
    driving loops, diagnosis waves over remote requests), and those threads
    are what block on cross-process results — the GIL is released while a
    worker process simulates, which is where the parallelism comes from.
    Workers never submit back into the thread pool, so a full thread front
    blocked on worker results cannot deadlock.
    """

    backend = "process"

    def __init__(
        self,
        processes: int | None = None,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
        thread_name_prefix: str = "repro-procpool",
    ) -> None:
        self.processes = processes or default_processes()
        if self.processes < 1:
            raise ValueError("processes must be at least 1")
        super().__init__(
            max_workers=max_workers or max(_default_workers(), 2 * self.processes),
            thread_name_prefix=thread_name_prefix,
        )
        self.start_method = (
            start_method or os.environ.get("REPRO_POOL_START") or "fork"
        )
        self._ctx = multiprocessing.get_context(self.start_method)
        self._proc_lock = threading.Lock()
        # guarded-by: _proc_lock
        self._procs: list[_Worker] = []
        # guarded-by: _proc_lock
        self._affinity: dict[str, int] = {}
        # guarded-by: _proc_lock
        self._rr = 0
        # guarded-by: _proc_lock
        self._seq = 0
        # guarded-by: _proc_lock
        self._inflight: dict[int, tuple[Future, int]] = {}
        # guarded-by: _proc_lock
        self._started = False
        self._results: Any = None
        self._dispatcher: threading.Thread | None = None

    # -- worker lifecycle ------------------------------------------------
    def _ensure_started(self) -> None:
        with self._proc_lock:
            if self._started:
                return
            self._results = self._ctx.Queue()
            for index in range(self.processes):
                tasks = self._ctx.Queue()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(index, tasks, self._results),
                    name=f"repro-procpool-{index}",
                    daemon=True,
                )
                process.start()
                self._procs.append(_Worker(index, process, tasks))
            self._dispatcher = threading.Thread(
                target=self._dispatch_results,
                name="repro-procpool-dispatch",
                daemon=True,
            )
            self._dispatcher.start()
            self._started = True

    def _dispatch_results(self) -> None:
        """Single parent thread resolving futures from the shared result queue."""
        while True:
            try:
                item = self._results.get(timeout=0.5)
            except stdlib_queue.Empty:
                if self._closed:
                    break
                self._reap_dead()
                continue
            if item is None:
                break
            seq, ok, body = item
            with self._proc_lock:
                entry = self._inflight.pop(seq, None)
            if entry is None:
                continue
            future, worker_idx = entry
            if ok:
                try:
                    result = json.loads(body)
                except Exception as exc:  # malformed body: fail loud, keep looping
                    future.set_exception(
                        ProcpoolPayloadError(f"result decode failed: {exc}")
                    )
                    continue
                if isinstance(result, dict) and _OBS_KEY in result:
                    try:
                        obs_worker.ingest(result.get(_OBS_KEY), worker=worker_idx)
                    except Exception:  # noqa: BLE001 - obs must never fail a task
                        pass
                    result = result.get("result")
                future.set_result(result)
            else:
                future.set_exception(RuntimeError(body))

    def _reap_dead(self) -> None:
        """Fail futures routed to workers that died without reporting back."""
        with self._proc_lock:
            dead = {
                worker.index
                for worker in self._procs
                if worker.process.pid is not None and not worker.process.is_alive()
            }
            if not dead:
                return
            orphaned = [
                (seq, future, idx)
                for seq, (future, idx) in self._inflight.items()
                if idx in dead
            ]
            for seq, _future, _idx in orphaned:
                self._inflight.pop(seq, None)
        for _seq, future, idx in orphaned:
            worker = self._procs[idx]
            future.set_exception(
                RuntimeError(
                    f"procpool worker {idx} (pid {worker.process.pid}) died with "
                    f"exit code {worker.process.exitcode} before returning a result"
                )
            )

    # -- task submission -------------------------------------------------
    def submit_task(
        self, task: str, payload: dict, *, affinity: str | None = None
    ) -> "Future[Any]":
        """Run registered task ``task`` in a worker process; returns a Future.

        ``task`` is a dotted import path (``"repro.stream.worker:advance_env"``)
        resolved inside the worker; ``payload`` must be a JSON document.  The
        future resolves to the task's decoded JSON result.  The first sight of
        an affinity key pins it to the worker owning the fewest keys (lowest
        index wins ties) — deterministic for a fixed registration order — and
        every later submit with that key lands on the same worker.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        obs_ctx = obs_worker.context_payload()
        if obs_ctx is not None:
            if affinity is not None:
                obs_ctx["affinity"] = affinity
            envelope: Any = {_OBS_KEY: obs_ctx, "payload": payload}
        else:
            envelope = payload
        try:
            body = json.dumps(envelope)
        except TypeError as exc:
            raise ProcpoolPayloadError(
                f"payload for task {task!r} is not JSON-able ({exc}); "
                "procpool-discipline: build payloads from plain dicts via the "
                "storage serializers, never live object graphs"
            ) from None
        self._ensure_started()
        future: "Future[Any]" = Future()
        future.set_running_or_notify_cancel()
        with self._proc_lock:
            if affinity is None:
                index = self._rr % self.processes
                self._rr += 1
            else:
                index = self._affinity.get(affinity, -1)
                if index < 0:
                    index = min(
                        range(self.processes),
                        key=lambda i: (self._procs[i].affinity_keys, i),
                    )
                    self._affinity[affinity] = index
                    self._procs[index].affinity_keys += 1
            seq = self._seq
            self._seq += 1
            self._inflight[seq] = (future, index)
            worker = self._procs[index]
            worker.tasks_routed += 1
            worker.handoff_bytes += len(body)
        worker.tasks.put((seq, task, body))
        return future

    def run_task(
        self, task: str, payload: dict, *, affinity: str | None = None
    ) -> Any:
        """Blocking convenience wrapper over :meth:`submit_task`."""
        return self.submit_task(task, payload, affinity=affinity).result()

    # -- observability collection -----------------------------------------
    def collect_obs(self, timeout: float = 5.0) -> int:
        """Drain every live worker's span buffer + registry into the parent.

        The bounded periodic flush of cross-process tracing: broadcasts the
        obs flush task to each worker (piggy-backed buffers cover the common
        path; this catches spans stranded by failed tasks and refreshes the
        ``worker.<pid>.*`` metrics between task returns).  Called from the
        supervisor's sidecar-snapshot cadence and at quiesce.  Returns the
        number of spans merged; a worker that fails to answer within
        ``timeout`` is skipped, never raised.
        """
        pending: list[tuple[int, Future]] = []
        with self._proc_lock:
            if not self._started or self._closed:
                return 0
            for worker in self._procs:
                if not worker.process.is_alive():
                    continue
                future: "Future[Any]" = Future()
                future.set_running_or_notify_cancel()
                seq = self._seq
                self._seq += 1
                self._inflight[seq] = (future, worker.index)
                worker.tasks_routed += 1
                worker.tasks.put((seq, _OBS_FLUSH_TASK, "{}"))
                pending.append((worker.index, future))
        merged = 0
        for index, future in pending:
            try:
                payload = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - a dead/slow worker skips its flush
                continue
            try:
                merged += obs_worker.ingest(payload or None, worker=index)
            except Exception:  # noqa: BLE001 - obs must never fail the caller
                continue
        return merged

    # -- stats -----------------------------------------------------------
    def stats(self) -> dict:
        """Thread-front counters plus per-worker process routing stats."""
        base = super().stats()
        base["backend"] = self.backend
        with self._proc_lock:
            base["processes"] = self.processes
            base["start_method"] = self.start_method
            base["affinity_keys"] = len(self._affinity)
            base["workers"] = [
                {
                    "worker": worker.index,
                    "pid": worker.process.pid if self._started else None,
                    "alive": bool(self._started and worker.process.is_alive()),
                    "affinity_keys": worker.affinity_keys,
                    "tasks_routed": worker.tasks_routed,
                    "handoff_bytes": worker.handoff_bytes,
                }
                for worker in self._procs
            ] or [
                {
                    "worker": index,
                    "pid": None,
                    "alive": False,
                    "affinity_keys": 0,
                    "tasks_routed": 0,
                    "handoff_bytes": 0,
                }
                for index in range(self.processes)
            ]
        return base

    # -- lifecycle -------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._proc_lock:
            already_closed = self._closed
            started = self._started
            procs = list(self._procs)
        if not already_closed and started:
            for worker in procs:
                try:
                    worker.tasks.put(None)
                except (OSError, ValueError):
                    pass
            if wait:
                for worker in procs:
                    worker.process.join(timeout=5.0)
            for worker in procs:
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
            # Fail anything still in flight so dispatch threads blocked on
            # .result() unwind before the thread executor joins below.
            with self._proc_lock:
                orphaned = list(self._inflight.values())
                self._inflight.clear()
            for future, index in orphaned:
                future.set_exception(
                    RuntimeError(f"procpool shut down with task in flight on worker {index}")
                )
            if self._results is not None:
                try:
                    self._results.put(None)
                except (OSError, ValueError):
                    pass
            if self._dispatcher is not None:
                self._dispatcher.join(timeout=5.0)
        super().shutdown(wait=wait)
