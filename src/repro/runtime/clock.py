"""Per-environment clock vectors for the barrier-free fleet runtime.

Once environments advance on independent clocks, "how far has the fleet
got?" stops being a single number.  A :class:`ClockVector` tracks each
member's simulated progress, enforces monotonicity (a clock never moves
backwards), and reduces to the two aggregates the supervisor needs:
``min_clock`` — the duration the *whole* fleet is guaranteed to have covered
(what ``resume()`` reports and ``--hours`` accounting uses) — and
``max_clock``/``skew`` for observability.  Checkpoints persist the vector so
a resumed fleet fast-forwards every environment to exactly where *it* was,
not to a fleet-wide barrier.
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["ClockVector"]


class ClockVector:
    """A monotonic map of member name → simulated seconds covered."""

    def __init__(self, clocks: Mapping[str, float] | None = None) -> None:
        self._clocks: dict[str, float] = {}
        for name, value in (clocks or {}).items():
            self.advance(name, value)

    # -- updates ---------------------------------------------------------
    def advance(self, name: str, to: float) -> float:
        """Move one member's clock forward to ``to``; returns the new value.

        Moving backwards raises — a regressing clock means two writers
        disagree about an environment's timeline, which is exactly the bug
        class the vector exists to surface.
        """
        if to < 0:
            raise ValueError(f"clock for {name!r} cannot be negative ({to!r})")
        current = self._clocks.get(name)
        if current is not None and to < current:
            raise ValueError(
                f"clock for {name!r} cannot move backwards "
                f"(at {current:g}, asked for {to:g})"
            )
        self._clocks[name] = float(to)
        return self._clocks[name]

    def merge(self, other: "ClockVector | Mapping[str, float]") -> "ClockVector":
        """Element-wise maximum with ``other`` (in place); returns self."""
        items = other._clocks if isinstance(other, ClockVector) else other
        for name, value in items.items():
            if value >= self._clocks.get(name, 0.0):
                self._clocks[name] = float(value)
        return self

    def drop(self, name: str) -> None:
        self._clocks.pop(name, None)

    # -- aggregates ------------------------------------------------------
    @property
    def min_clock(self) -> float:
        """Progress the whole fleet is guaranteed to have covered."""
        return min(self._clocks.values(), default=0.0)

    @property
    def max_clock(self) -> float:
        return max(self._clocks.values(), default=0.0)

    @property
    def skew(self) -> float:
        """Spread between the fastest and slowest member."""
        return self.max_clock - self.min_clock if self._clocks else 0.0

    # -- mapping surface -------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        return self._clocks.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._clocks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._clocks

    def __iter__(self) -> Iterator[str]:
        return iter(self._clocks)

    def __len__(self) -> int:
        return len(self._clocks)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ClockVector):
            return self._clocks == other._clocks
        if isinstance(other, Mapping):
            return self._clocks == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._clocks.items()))
        return f"ClockVector({body})"

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict[str, float]:
        return dict(sorted(self._clocks.items()))

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ClockVector":
        return cls(data)
