"""Cooperative scheduler: asyncio orchestration over the shared worker pool.

The runtime's execution model is two-tier.  **Coordination** (which
environment advances next, folding detections into incidents, journalling,
checkpoint snapshots) runs as plain coroutines on one event loop — single
threaded, so per-environment bookkeeping needs no locks.  **Work** (simulation
chunks, diagnosis pipelines, store scans) is blocking and CPU/IO-bound, so it
is pushed onto the shared :class:`~repro.runtime.pools.WorkerPool` via
:meth:`Scheduler.call`, which awaits the result without holding the loop.

Thousands of cooperating tasks interleave on the loop while at most
``pool.max_workers`` blocking jobs run at once.  :class:`TaskQueue` is the
substrate's bounded-buffer backpressure primitive (``put`` suspends the
producer once the queue is full) for consumers that pipeline work through
handler stages; note the fleet supervisor caps its in-flight diagnosis
waves with a plain ``asyncio.Semaphore`` instead — it needs each report
back at the submitting task, not a fire-and-forget handler.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Coroutine

from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from .pools import WorkerPool, shared_pool

__all__ = ["Scheduler", "TaskQueue", "TaskTimeout"]


class TaskTimeout(TimeoutError):
    """A pool task exceeded its wall-clock budget.

    The blocking callable may still be running on its worker thread (threads
    cannot be preempted); the awaiting coroutine has moved on and the task's
    result — whenever it lands — is discarded.
    """


class Scheduler:
    """Drives coroutines on a private event loop backed by a worker pool.

    One scheduler owns one :class:`asyncio` loop per :meth:`run` invocation
    and borrows (by default) the process-shared worker pool, so concurrent
    schedulers still draw from a single thread budget.  The API is small on
    purpose: ``run`` is the sync entry point, ``call`` bridges blocking work
    onto the pool, ``spawn``/``gather`` manage cooperating tasks.
    """

    def __init__(self, pool: WorkerPool | None = None) -> None:
        self.pool = pool or shared_pool()
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- sync entry point ------------------------------------------------
    def run(self, main: Coroutine[Any, Any, Any]) -> Any:
        """Run ``main`` to completion on a fresh event loop (sync caller).

        Unfinished tasks spawned by ``main`` are cancelled and awaited before
        the loop closes, so a raising workload cannot leak pending tasks into
        the next run.
        """
        if self._loop is not None:
            raise RuntimeError("scheduler is already running")
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            return loop.run_until_complete(self._supervise(main))
        finally:
            self._loop = None
            try:
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    async def _supervise(self, main: Coroutine[Any, Any, Any]) -> Any:
        # Event-loop-lag probe: with observability on, a background sleeper
        # measures how late the loop wakes it (scheduler.loop_lag_s gauge +
        # histogram).  Scoped to this run; no wall reads outside repro.obs.
        probe: asyncio.Task | None = None
        if obs_clock.is_enabled():
            probe = asyncio.get_running_loop().create_task(
                obs_metrics.loop_lag_probe(), name="obs-loop-lag"
            )
        try:
            return await main
        finally:
            if probe is not None:
                probe.cancel()
                try:
                    await probe
                except (asyncio.CancelledError, Exception):
                    pass

    # -- bridging blocking work ------------------------------------------
    async def call(
        self,
        fn: Callable[..., Any],
        /,
        *args: Any,
        timeout: float | None = None,
    ) -> Any:
        """Run blocking ``fn(*args)`` on the pool; await its result.

        Cancelling the awaiting coroutine cancels the pool task if it has not
        started (a started thread runs to completion, its result discarded).
        ``timeout`` bounds the wall-clock wait and raises :class:`TaskTimeout`.
        """
        future = self.pool.submit(fn, *args)
        wrapped = asyncio.wrap_future(future)
        try:
            # Submit-to-result latency (queueing + execution), as seen by the
            # awaiting coroutine.  Null timer when observability is off.
            with obs_metrics.timed("scheduler.task_latency_s"):
                if timeout is not None:
                    return await asyncio.wait_for(wrapped, timeout)
                return await wrapped
        except asyncio.TimeoutError:
            future.cancel()
            obs_metrics.inc("scheduler.timeouts")
            raise TaskTimeout(
                f"pool task {getattr(fn, '__name__', fn)!r} exceeded {timeout:g}s"
            ) from None

    # -- task management -------------------------------------------------
    def spawn(
        self, coro: Coroutine[Any, Any, Any], *, name: str | None = None
    ) -> "asyncio.Task":
        """Start a cooperating task on the running loop."""
        return asyncio.get_running_loop().create_task(coro, name=name)

    async def gather(self, *aws: Awaitable[Any]) -> list[Any]:
        return list(await asyncio.gather(*aws))


class TaskQueue:
    """A bounded work queue with backpressure and N consumer workers.

    Producers ``await put(item)`` — once ``maxsize`` items are buffered the
    producer *suspends* until a consumer drains one, which is what keeps a
    fast advance loop from piling up unbounded diagnosis work.  ``handler``
    is an async callable invoked per item by ``workers`` consumer tasks.

    Handler exceptions are captured (first one re-raised by :meth:`close`)
    rather than killing the consumer, so one poisoned item cannot silently
    stall every producer behind a dead queue.
    """

    def __init__(
        self,
        handler: Callable[[Any], Awaitable[Any]],
        *,
        workers: int = 4,
        maxsize: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.handler = handler
        self.workers = workers
        self.maxsize = maxsize
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._tasks: list[asyncio.Task] = []
        self._errors: list[BaseException] = []
        self._closed = False
        self.processed = 0

    def start(self) -> "TaskQueue":
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._consume(), name=f"taskqueue-{i}")
            for i in range(self.workers)
        ]
        return self

    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                await self.handler(item)
                self.processed += 1
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 — recorded, re-raised on close
                self._errors.append(exc)
            finally:
                self._queue.task_done()

    async def put(self, item: Any) -> None:
        """Enqueue one item; suspends (backpressure) while the queue is full."""
        if self._closed:
            raise RuntimeError("task queue is closed")
        await self._queue.put(item)

    def offer(self, item: Any) -> bool:
        """Non-blocking :meth:`put`: ``False`` when full or closed.

        The publish side of a fan-out must never suspend on its slowest
        subscriber — an SSE broadcaster calls ``offer`` and treats ``False``
        as "this consumer can't keep up", disconnecting it instead of
        buffering without bound or stalling the supervision loop.
        """
        if self._closed:
            return False
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            return False
        return True

    async def join(self) -> None:
        """Wait until every enqueued item has been handled."""
        await self._queue.join()

    async def close(self) -> None:
        """Drain, stop the consumers, and re-raise the first handler error."""
        self._closed = True
        await self._queue.join()
        for _ in self._tasks:
            await self._queue.put(_SENTINEL)
        await asyncio.gather(*self._tasks)
        if self._errors:
            raise self._errors[0]

    def __len__(self) -> int:
        return self._queue.qsize()


#: Internal shutdown marker for TaskQueue consumers.
_SENTINEL = object()
