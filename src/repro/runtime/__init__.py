"""repro.runtime — the execution substrate under the fleet closed loop.

Three small pieces, layered so every fan-out site in the codebase draws from
one budget of threads instead of spinning up throwaway executors:

* :mod:`repro.runtime.pools` — :class:`WorkerPool`, a long-lived thread pool
  with a bounded ``map_bounded`` fan-out, and :func:`shared_pool`, the
  process-wide instance the supervisor, the diagnosis pipeline, and the CLI
  all share (``shared_pool(backend=...)`` / ``REPRO_POOL`` select threads or
  processes);
* :mod:`repro.runtime.procpool` — :class:`ProcessWorkerPool`, the same
  ``WorkerPool`` contract over long-lived worker processes with sticky
  env→worker affinity and JSON-only handoff — true parallelism for
  CPU-bound simulation;
* :mod:`repro.runtime.scheduler` — :class:`Scheduler`, cooperative asyncio
  orchestration (coordination on one loop, blocking work bridged onto the
  pool via ``call`` with per-task cancellation/timeout) and
  :class:`TaskQueue`, the bounded backpressure queue;
* :mod:`repro.runtime.clock` — :class:`ClockVector`, per-environment
  simulated-time tracking for a fleet whose members advance on independent
  clocks.

The module deliberately imports nothing from the rest of the package, so any
layer (core, lab, stream, cli) can build on it without cycles.
"""

from .clock import ClockVector
from .pools import WorkerPool, reset_shared_pool, resolve_pool_backend, shared_pool
from .procpool import ProcessWorkerPool, ProcpoolPayloadError
from .scheduler import Scheduler, TaskQueue, TaskTimeout

__all__ = [
    "WorkerPool",
    "ProcessWorkerPool",
    "ProcpoolPayloadError",
    "resolve_pool_backend",
    "shared_pool",
    "reset_shared_pool",
    "Scheduler",
    "TaskQueue",
    "TaskTimeout",
    "ClockVector",
]
