"""Incident lifecycle: open → diagnosing → resolved, with dedup + cooldown.

Detections are cheap and repetitive — a flapping fault re-fires its detector
every on-window.  Incidents are the durable unit the supervisor diagnoses
and the operator sees.  The :class:`IncidentManager` maps the detection
stream onto few incidents:

* **dedup** — a detection whose key (environment, target) already has a
  live (non-resolved) incident merges into it instead of opening a new one;
* **cooldown** — after an incident resolves, further detections for its key
  are suppressed for ``cooldown_s`` of simulated time, so one flapping
  fault does not reopen an incident per flap;
* **severity** — derived from the largest normalised detection magnitude
  (1.0 = exactly at the trigger): minor < 2x <= major < 4x <= critical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .detectors import Detection

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import DiagnosisReport

__all__ = ["IncidentState", "Severity", "Incident", "IncidentManager"]


class IncidentState(enum.Enum):
    OPEN = "open"
    DIAGNOSING = "diagnosing"
    RESOLVED = "resolved"


class Severity(enum.Enum):
    MINOR = "minor"
    MAJOR = "major"
    CRITICAL = "critical"

    @classmethod
    def from_magnitude(cls, magnitude: float) -> "Severity":
        if magnitude >= 4.0:
            return cls.CRITICAL
        if magnitude >= 2.0:
            return cls.MAJOR
        return cls.MINOR


@dataclass
class Incident:
    """One degradation episode in one watched environment."""

    incident_id: str
    env_name: str
    key: tuple[str, str]
    opened_at: float
    state: IncidentState = IncidentState.OPEN
    detections: list[Detection] = field(default_factory=list)
    #: Detections merged away by dedup while the incident was live.
    deduped: int = 0
    diagnosed_at: float | None = None
    resolved_at: float | None = None
    report: "DiagnosisReport | None" = None

    @property
    def severity(self) -> Severity:
        magnitude = max((d.magnitude for d in self.detections), default=1.0)
        return Severity.from_magnitude(magnitude)

    @property
    def top_cause_id(self) -> str | None:
        if self.report is None or self.report.top_cause is None:
            return None
        return self.report.top_cause.match.cause_id

    def absorb(self, detection: Detection) -> None:
        self.detections.append(detection)
        self.deduped += 1

    def begin_diagnosis(self, time: float) -> None:
        if self.state is not IncidentState.OPEN:
            raise ValueError(f"{self.incident_id} is {self.state.value}, not open")
        self.state = IncidentState.DIAGNOSING
        self.diagnosed_at = time

    def resolve(self, time: float, report: "DiagnosisReport | None" = None) -> None:
        if self.state is IncidentState.RESOLVED:
            raise ValueError(f"{self.incident_id} already resolved")
        if report is not None:
            self.report = report
        self.state = IncidentState.RESOLVED
        self.resolved_at = time

    def to_dict(self) -> dict:
        """JSON-friendly form (the ticket the supervisor would file)."""
        from ..core.serialize import report_to_dict

        return {
            "incident_id": self.incident_id,
            "env": self.env_name,
            "target": self.key[1],
            "state": self.state.value,
            "severity": self.severity.value,
            "opened_at": self.opened_at,
            "diagnosed_at": self.diagnosed_at,
            "resolved_at": self.resolved_at,
            "detections": [
                {
                    "time": d.time,
                    "detector": d.detector,
                    "target": d.target,
                    "value": d.value,
                    "expected": d.expected,
                    "magnitude": d.magnitude,
                    "kind": d.kind,
                }
                for d in self.detections
            ],
            "deduped": self.deduped,
            "report": report_to_dict(self.report) if self.report is not None else None,
        }


class IncidentManager:
    """Turns one environment's detection stream into deduplicated incidents."""

    def __init__(self, env_name: str, cooldown_s: float = 3600.0) -> None:
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.env_name = env_name
        self.cooldown_s = cooldown_s
        self.incidents: list[Incident] = []
        self._live: dict[tuple[str, str], Incident] = {}
        self._cooldown_until: dict[tuple[str, str], float] = {}
        self.suppressed = 0
        self._counter = 0

    def observe(self, detection: Detection) -> Incident | None:
        """Feed one detection; the new incident if one opened, else None."""
        key = (self.env_name, detection.target)
        live = self._live.get(key)
        if live is not None and live.state is not IncidentState.RESOLVED:
            live.absorb(detection)
            return None
        if detection.time < self._cooldown_until.get(key, -1.0):
            self.suppressed += 1
            return None
        self._counter += 1
        incident = Incident(
            incident_id=f"INC-{self.env_name}-{self._counter}",
            env_name=self.env_name,
            key=key,
            opened_at=detection.time,
            detections=[detection],
        )
        self.incidents.append(incident)
        self._live[key] = incident
        return incident

    def resolve(
        self, incident: Incident, time: float, report: "DiagnosisReport | None" = None
    ) -> None:
        """Resolve and start the key's cooldown clock."""
        incident.resolve(time, report)
        self._cooldown_until[incident.key] = time + self.cooldown_s

    def open_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.OPEN]

    def diagnosing_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.DIAGNOSING]

    def resolved_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.RESOLVED]

    def __len__(self) -> int:
        return len(self.incidents)
