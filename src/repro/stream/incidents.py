"""Incident lifecycle: open → diagnosing → resolved, with dedup + cooldown.

Detections are cheap and repetitive — a flapping fault re-fires its detector
every on-window.  Incidents are the durable unit the supervisor diagnoses
and the operator sees.  The :class:`IncidentManager` maps the detection
stream onto few incidents:

* **dedup** — a detection whose key (environment, target) already has a
  live (non-resolved) incident merges into it instead of opening a new one;
* **cooldown** — after an incident resolves, further detections for its key
  are suppressed for ``cooldown_s`` of simulated time, so one flapping
  fault does not reopen an incident per flap;
* **severity** — derived from the largest normalised detection magnitude
  (1.0 = exactly at the trigger): minor < 2x <= major < 4x <= critical.

Durability: an :class:`IncidentStore` journals every lifecycle transition
(open → absorb → diagnosing → resolved) through a pluggable
:class:`repro.storage.StorageBackend`, so incident history survives process
restarts and is queryable across them (``repro incidents``).  A manager
wired to a store journals automatically; :meth:`IncidentManager.state_dict`
/ :meth:`~IncidentManager.load_state` freeze and thaw the live
dedup/cooldown state for supervisor resume checkpoints.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..storage.journal import JournalStore
from ..storage.keyspaces import INCIDENTS
from .detectors import Detection

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import DiagnosisReport
    from ..storage.backend import StorageBackend

__all__ = [
    "IncidentState",
    "Severity",
    "Incident",
    "IncidentManager",
    "IncidentStore",
]


class IncidentState(enum.Enum):
    OPEN = "open"
    DIAGNOSING = "diagnosing"
    RESOLVED = "resolved"


class Severity(enum.Enum):
    MINOR = "minor"
    MAJOR = "major"
    CRITICAL = "critical"

    @classmethod
    def from_magnitude(cls, magnitude: float) -> "Severity":
        if magnitude >= 4.0:
            return cls.CRITICAL
        if magnitude >= 2.0:
            return cls.MAJOR
        return cls.MINOR

    def escalated(self, levels: int) -> "Severity":
        """This severity bumped ``levels`` steps (saturating at critical)."""
        order = (Severity.MINOR, Severity.MAJOR, Severity.CRITICAL)
        return order[min(order.index(self) + max(levels, 0), len(order) - 1)]


@dataclass
class Incident:
    """One degradation episode in one watched environment."""

    incident_id: str
    env_name: str
    key: tuple[str, str]
    opened_at: float
    state: IncidentState = IncidentState.OPEN
    detections: list[Detection] = field(default_factory=list)
    #: Detections merged away by dedup while the incident was live.
    deduped: int = 0
    diagnosed_at: float | None = None
    resolved_at: float | None = None
    report: "DiagnosisReport | None" = None
    #: Serialised report carried by incidents restored from a journal or
    #: checkpoint (the live ``DiagnosisReport`` object does not round-trip;
    #: its ticket form does).  ``to_dict`` falls back to this.
    report_data: dict | None = None
    #: How the incident closed: "diagnosed" (a report was produced) or
    #: "recovered" (the series returned to baseline before diagnosis).
    resolution: str | None = None
    #: Predecessor incident id when this incident re-opened a key that had
    #: recovery-resolved within its cooldown window (a regression).
    escalated_from: str | None = None
    #: How many recover→regress cycles precede this incident; each one bumps
    #: the derived severity a level (flapping is worse than a single blip).
    escalations: int = 0

    @property
    def severity(self) -> Severity:
        magnitude = max((d.magnitude for d in self.detections), default=1.0)
        return Severity.from_magnitude(magnitude).escalated(self.escalations)

    @property
    def top_cause_id(self) -> str | None:
        if self.report is not None:
            if self.report.top_cause is None:
                return None
            return self.report.top_cause.match.cause_id
        if self.report_data is not None and self.report_data.get("causes"):
            return self.report_data["causes"][0]["cause_id"]
        return None

    def absorb(self, detection: Detection) -> None:
        self.detections.append(detection)
        self.deduped += 1

    def begin_diagnosis(self, time: float) -> None:
        if self.state is not IncidentState.OPEN:
            raise ValueError(f"{self.incident_id} is {self.state.value}, not open")
        self.state = IncidentState.DIAGNOSING
        self.diagnosed_at = time

    def resolve(
        self,
        time: float,
        report: "DiagnosisReport | None" = None,
        *,
        resolution: str = "diagnosed",
    ) -> None:
        if self.state is IncidentState.RESOLVED:
            raise ValueError(f"{self.incident_id} already resolved")
        if report is not None:
            self.report = report
        self.state = IncidentState.RESOLVED
        self.resolved_at = time
        self.resolution = resolution

    def to_dict(self) -> dict:
        """JSON-friendly form (the ticket the supervisor would file)."""
        if self.report is not None:
            from ..core.serialize import report_to_dict

            report = report_to_dict(self.report)
        else:
            report = self.report_data
        return {
            "incident_id": self.incident_id,
            "env": self.env_name,
            "target": self.key[1],
            "state": self.state.value,
            "severity": self.severity.value,
            "opened_at": self.opened_at,
            "diagnosed_at": self.diagnosed_at,
            "resolved_at": self.resolved_at,
            "detections": [d.to_dict() for d in self.detections],
            "deduped": self.deduped,
            "report": report,
            "resolution": self.resolution,
            "escalated_from": self.escalated_from,
            "escalations": self.escalations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Incident":
        """Rebuild an incident from its ticket form.

        The inverse of :meth:`to_dict` up to the live report object: a
        restored incident carries the serialised report under
        ``report_data``, which ``to_dict`` and ``top_cause_id`` consult, so
        ``Incident.from_dict(i.to_dict()).to_dict() == i.to_dict()``.
        """
        return cls(
            incident_id=data["incident_id"],
            env_name=data["env"],
            key=(data["env"], data["target"]),
            opened_at=data["opened_at"],
            state=IncidentState(data["state"]),
            detections=[Detection.from_dict(d) for d in data.get("detections", [])],
            deduped=data.get("deduped", 0),
            diagnosed_at=data.get("diagnosed_at"),
            resolved_at=data.get("resolved_at"),
            report_data=data.get("report"),
            resolution=data.get("resolution"),
            escalated_from=data.get("escalated_from"),
            escalations=data.get("escalations", 0),
        )


class IncidentManager:
    """Turns one environment's detection stream into deduplicated incidents.

    When constructed with a ``store``, every lifecycle transition is
    journalled through it, making the incident history durable.
    """

    #: Cooldown-map size above which observe() sweeps out expired entries.
    PRUNE_THRESHOLD = 32

    def __init__(
        self,
        env_name: str,
        cooldown_s: float = 3600.0,
        store: "IncidentStore | None" = None,
    ) -> None:
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.env_name = env_name
        self.cooldown_s = cooldown_s
        self.store = store
        self.incidents: list[Incident] = []
        self._live: dict[tuple[str, str], Incident] = {}
        self._cooldown_until: dict[tuple[str, str], float] = {}
        #: Last recovery-resolved incident per key — the predecessor link a
        #: regression inside the cooldown window re-escalates from.
        self._recovered: dict[tuple[str, str], Incident] = {}
        #: Incidents recovery-resolved since the last :meth:`drain_recoveries`
        #: (the supervisor drains these per fold to emit resolved events).
        self._recoveries: list[Incident] = []
        self.suppressed = 0
        self._counter = 0

    def observe(self, detection: Detection) -> Incident | None:
        """Feed one detection; the new incident if one opened, else None."""
        key = (self.env_name, detection.target)
        live = self._live.get(key)
        if detection.kind == "recovery":
            # Return-to-baseline: resolve a still-open incident without a
            # diagnosis.  An incident already DIAGNOSING keeps going — the
            # in-flight report is about to resolve it anyway.
            if (
                live is not None
                and live.state is IncidentState.OPEN
                and detection.time >= live.opened_at
            ):
                live.absorb(detection)
                self.resolve(live, detection.time, resolution="recovered")
                self._recoveries.append(live)
            return None
        if live is not None and live.state is not IncidentState.RESOLVED:
            live.absorb(detection)
            self._journal("absorb", live, detection.time)
            return None
        # Prune expired cooldown entries (simulated time is monotone per
        # environment, so an entry at or below this detection's time can
        # never suppress anything again).  Without this, a long-lived fleet
        # with many detection targets leaks one entry per target forever and
        # bloats every resume checkpoint.  The sweep is size-gated so the
        # hot detection path stays O(1) amortised: expired entries are
        # harmless (the suppression check below ignores them), only their
        # memory matters.
        if len(self._cooldown_until) > self.PRUNE_THRESHOLD:
            self._cooldown_until = {
                k: until
                for k, until in self._cooldown_until.items()
                if until > detection.time
            }
        predecessor: Incident | None = None
        if detection.time < self._cooldown_until.get(key, -1.0):
            predecessor = self._recovered.get(key)
            if predecessor is None:
                self.suppressed += 1
                return None
            # Regression: the key recovery-resolved inside its cooldown and
            # degraded again — that is flapping, not noise.  Re-escalate
            # (bypass the cooldown) with a predecessor link and a severity
            # bump instead of suppressing the evidence.
        else:
            self._recovered.pop(key, None)  # cooldown over: fresh episode
        self._counter += 1
        incident = Incident(
            incident_id=f"INC-{self.env_name}-{self._counter}",
            env_name=self.env_name,
            key=key,
            opened_at=detection.time,
            detections=[detection],
            escalated_from=predecessor.incident_id if predecessor else None,
            escalations=predecessor.escalations + 1 if predecessor else 0,
        )
        if predecessor is not None:
            self._recovered.pop(key, None)
        self.incidents.append(incident)
        self._live[key] = incident
        self._journal("open", incident, detection.time)
        return incident

    def begin_diagnosis(self, incident: Incident, time: float) -> None:
        """Transition to DIAGNOSING (journalled)."""
        incident.begin_diagnosis(time)
        self._journal("diagnosing", incident, time)

    def resolve(
        self,
        incident: Incident,
        time: float,
        report: "DiagnosisReport | None" = None,
        *,
        resolution: str = "diagnosed",
    ) -> None:
        """Resolve and start the key's cooldown clock."""
        incident.resolve(time, report, resolution=resolution)
        self._cooldown_until[incident.key] = time + self.cooldown_s
        if resolution == "recovered":
            self._recovered[incident.key] = incident
        self._journal("resolved", incident, time)

    def drain_recoveries(self) -> list[Incident]:
        """Incidents recovery-resolved since the last drain (then cleared)."""
        out, self._recoveries = self._recoveries, []
        return out

    def _journal(self, event: str, incident: Incident, time: float) -> None:
        if self.store is not None:
            self.store.record(event, incident, time)

    # -- resume ----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume dedup/cooldown exactly: incidents
        (ticket form), cooldown clocks, the suppressed count, the id
        counter."""
        return {
            "env_name": self.env_name,
            "cooldown_s": self.cooldown_s,
            "incidents": [i.to_dict() for i in self.incidents],
            "cooldown_until": [
                [env, target, until]
                for (env, target), until in sorted(self._cooldown_until.items())
            ],
            "recovered": [
                [env, target, incident.incident_id]
                for (env, target), incident in sorted(self._recovered.items())
            ],
            "suppressed": self.suppressed,
            "counter": self._counter,
        }

    def load_state(self, state: dict) -> None:
        """Thaw a :meth:`state_dict` snapshot (journalling suppressed —
        the journal already holds these transitions)."""
        self.incidents = [Incident.from_dict(d) for d in state.get("incidents", [])]
        self._live = {
            i.key: i for i in self.incidents if i.state is not IncidentState.RESOLVED
        }
        self._cooldown_until = {
            (env, target): until
            for env, target, until in state.get("cooldown_until", [])
        }
        by_id = {i.incident_id: i for i in self.incidents}
        self._recovered = {
            (env, target): by_id[incident_id]
            for env, target, incident_id in state.get("recovered", [])
            if incident_id in by_id
        }
        self._recoveries = []
        self.suppressed = state.get("suppressed", 0)
        self._counter = state.get("counter", len(self.incidents))

    #: Pre-0.6 name for :meth:`load_state`, kept for subclassers; the
    #: canonical pair is ``state_dict``/``load_state`` (lint-enforced).
    restore = load_state

    def open_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.OPEN]

    def diagnosing_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.DIAGNOSING]

    def resolved_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.state is IncidentState.RESOLVED]

    def __len__(self) -> int:
        return len(self.incidents)


class IncidentStore(JournalStore):
    """Durable, queryable incident history over a pluggable backend.

    Each lifecycle transition is journalled as one *delta* record keyed by
    incident id: ``open`` carries the full ticket, ``absorb`` only the new
    detection, ``diagnosing``/``resolved`` only the fields they change — so
    an incident that absorbs N detections costs O(N) journal bytes, not
    O(N²) of re-serialised tickets.  The store folds the journal into the
    *latest* ticket per incident (both live and on :meth:`replay`), which is
    what ``history()`` serves across any number of process restarts — the
    query surface behind ``repro incidents``.

    Folding is idempotent: a supervisor resumed from a checkpoint replays
    the partially-journalled tick deterministically, so a transition may be
    journalled twice with identical content — re-folding it must not change
    the ticket (``absorb`` skips a detection already present; the other
    events overwrite with equal values).
    """

    KEYSPACE = INCIDENTS

    def __init__(self, backend: "StorageBackend") -> None:
        self._transitions = 0
        super().__init__(backend)

    def replay(self) -> int:
        """Fold the journal into the latest-ticket view (on open)."""
        self._transitions = super().replay()
        return self._transitions

    def _fold(self, rec: dict) -> None:
        event = rec["event"]
        if event == "open":
            # Deep-copy: by-reference backends (MemoryBackend) keep the
            # journal record's own dict; folding later deltas into it in
            # place would retroactively rewrite the journalled open snapshot.
            self._latest[rec["k"]] = copy.deepcopy(rec["incident"])
            return
        ticket = self._latest.get(rec["k"])
        if ticket is None:
            return  # delta for an incident whose open record is gone
        if event == "absorb":
            detection = rec["detection"]
            if detection not in ticket["detections"]:
                ticket["detections"].append(detection)
                ticket["deduped"] = rec["deduped"]
                ticket["severity"] = rec["severity"]
        elif event == "diagnosing":
            ticket["state"] = IncidentState.DIAGNOSING.value
            ticket["diagnosed_at"] = rec["diagnosed_at"]
        elif event == "resolved":
            ticket["state"] = IncidentState.RESOLVED.value
            ticket["resolved_at"] = rec["resolved_at"]
            ticket["report"] = rec["report"]
            ticket["resolution"] = rec.get("resolution", "diagnosed")
            if "detections" in rec:  # absent in pre-0.5 journals
                ticket["detections"] = copy.deepcopy(rec["detections"])
                ticket["deduped"] = rec["deduped"]
                ticket["severity"] = rec["severity"]

    # -- writing ---------------------------------------------------------
    def record(self, event: str, incident: Incident, time: float) -> None:
        rec: dict = {"t": time, "k": incident.incident_id, "event": event}
        if event == "open":
            rec["incident"] = incident.to_dict()
        elif event == "absorb":
            rec["detection"] = incident.detections[-1].to_dict()
            rec["deduped"] = incident.deduped
            rec["severity"] = incident.severity.value
        elif event == "diagnosing":
            rec["diagnosed_at"] = incident.diagnosed_at
        elif event == "resolved":
            rec["resolved_at"] = incident.resolved_at
            rec["resolution"] = incident.resolution
            if incident.report is not None:
                from ..core.serialize import report_to_dict

                rec["report"] = report_to_dict(incident.report)
            else:
                rec["report"] = incident.report_data
            # Authoritative snapshot of the final detection set: a fleet
            # short-circuit may have re-routed detections absorbed after the
            # resolve instant, so the folded ticket must not keep them.
            rec["detections"] = [d.to_dict() for d in incident.detections]
            rec["deduped"] = incident.deduped
            rec["severity"] = incident.severity.value
        else:
            raise ValueError(f"unknown incident event {event!r}")
        self._append(rec)
        self._transitions += 1

    # -- queries ---------------------------------------------------------
    def history(
        self,
        *,
        env: str | None = None,
        state: "IncidentState | str | None" = None,
        since: float | None = None,
    ) -> list[dict]:
        """Latest ticket per incident, ordered by open time.

        ``env`` filters by environment name, ``state`` by final state,
        ``since`` by ``opened_at``.
        """
        wanted = state.value if isinstance(state, IncidentState) else state
        out = [
            ticket
            for ticket in self._tickets()
            if (env is None or ticket["env"] == env)
            and (wanted is None or ticket["state"] == wanted)
            and (since is None or ticket["opened_at"] >= since)
        ]
        return sorted(out, key=lambda t: (t["opened_at"], t["incident_id"]))

    def incidents(self) -> list[Incident]:
        """History rehydrated into :class:`Incident` objects."""
        return [Incident.from_dict(t) for t in self.history()]
