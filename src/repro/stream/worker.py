"""Worker-process side of the process-backed fleet (procpool tasks).

Every function here is a procpool *task*: resolved by dotted name inside the
worker (``"repro.stream.worker:advance_env"``), taking one JSON payload and
returning one JSON document.  Nothing else crosses the process boundary — no
pickled simulators, no live detector objects.

The contract with :mod:`repro.stream.remote` (the parent-side proxies):

* Every payload carries the environment's **hydration spec** — the scenario
  registry name plus build parameters (``hours``, ``seed``, fleet member) and
  detector configuration.  Environments are deterministic, so any worker can
  rebuild one from its spec; sticky affinity means in practice each is built
  exactly once, in the one worker that owns it, and then advanced in place.
* ``advance_env`` advances the cached environment one chunk and returns the
  compact delta the supervisor needs: drained detections (``to_dict`` form),
  the clock, the run count, diagnosability, and the detector state dicts the
  checkpoint snapshots.
* ``diagnose_env`` runs the full diagnosis pipeline *in the worker* against
  the live bundle and returns ``report_to_dict`` output — the same dict the
  thread-mode report serialises to, which is what keeps incident histories
  byte-for-byte identical across backends.
* ``bundle_env`` exports the whole bundle (fleet drill-down needs cross-
  member evidence in the parent); ``load_detectors`` restores checkpointed
  detector state after a resume fast-forward.
"""

from __future__ import annotations

from typing import Any

from ..lab.scenarios import Scenario, ScenarioBundle
from ..obs import metrics as obs_metrics
from ..obs import worker as obs_worker
from .detectors import (
    Detection,
    DetectorBank,
    ResponseTimeSloDetector,
    default_detector_factory,
)

__all__ = [
    "advance_env",
    "diagnose_env",
    "bundle_env",
    "load_detectors",
    "reset_worker_state",
]

#: watch name → hydrated environment, per worker process.  Sticky affinity
#: guarantees a given name only ever lands in one worker, so this cache is
#: the "hydrated once, advanced in place" half of the handoff design.
_ENVS: dict[str, "_WorkerEnv"] = {}

#: (fleet name, hours, seed) → built SharedFabric: members of one fabric
#: routed to the same worker share the single deterministic build.
_FABRICS: dict[tuple, Any] = {}

#: One pipeline per worker process (module registry warm across tasks).
_PIPELINE = None


def _scenario_for(spec: dict) -> Scenario:
    """Rebuild the named scenario from the CLI registries.

    The spec uses the same identity keys the checkpoint meta records
    (scenario/fleet name, hours, seed), so a spec that resumes cleanly in
    thread mode hydrates the identical simulation here.
    """
    from ..cli import FLEET_SCENARIOS, SCENARIOS  # lazy: cli imports stream

    kwargs: dict[str, Any] = {"hours": float(spec["hours"])}
    if spec.get("seed") is not None:
        kwargs["seed"] = int(spec["seed"])
    fleet = spec.get("fleet")
    if fleet:
        key = (fleet, kwargs["hours"], kwargs.get("seed"))
        fabric = _FABRICS.get(key)
        if fabric is None:
            fabric = FLEET_SCENARIOS[fleet](**kwargs)
            _FABRICS[key] = fabric
        return fabric.members[spec["env"]]
    return SCENARIOS[spec["scenario"]](**kwargs)


class _WorkerEnv:
    """One hydrated environment + its streaming detectors (no manager).

    The incident manager — and everything downstream of it (correlator,
    checkpoints, event log) — stays in the parent; this is only the
    CPU-heavy half: the simulator and the per-sample detector state.
    Mirrors :class:`repro.stream.supervisor.WatchedEnvironment`'s tap wiring
    exactly, so detections fire in the identical order.
    """

    def __init__(self, spec: dict) -> None:
        scenario = _scenario_for(spec)
        self.info = scenario.info
        self.query_name = spec.get("query_name") or scenario.query_name
        self.env = scenario.build()
        recovery = bool(spec.get("recovery", False))
        self.bank = DetectorBank(
            factory=default_detector_factory(emit_recovery=recovery)
        )
        self.run_detector = ResponseTimeSloDetector(
            factor=float(spec.get("slo_factor", 1.3)),
            baseline_runs=int(spec.get("baseline_runs", 4)),
            query_name=self.query_name,
            emit_recovery=recovery,
        )
        self._pending: list[Detection] = []
        self.env.collector.add_metric_tap(self._on_metric)
        self.env.collector.add_run_tap(self._on_run)

    def _on_metric(
        self, time: float, component_id: str, metric: str, value: float
    ) -> None:
        detection = self.bank.observe(time, component_id, metric, value)
        if detection is not None:
            self._pending.append(detection)

    def _on_run(self, run) -> None:
        detection = self.run_detector.observe_run(run)
        if detection is not None:
            self._pending.append(detection)

    def advance(self, chunk_s: float) -> list[Detection]:
        self.env.advance(chunk_s)
        drained, self._pending = self._pending, []
        return drained

    def diagnosable(self) -> bool:
        runs = self.env.stores.runs
        return bool(
            runs.satisfactory_runs(self.query_name)
            and runs.unsatisfactory_runs(self.query_name)
        )


def _hydrated(spec: dict) -> _WorkerEnv:
    name = spec["name"]
    worker_env = _ENVS.get(name)
    if worker_env is None:
        # Buffered worker span: hydration is the one expensive cold-start
        # step, worth seeing on the parent's merged timeline.
        with obs_worker.worker_span("worker.hydrate", env=name):
            worker_env = _WorkerEnv(spec)
        obs_metrics.inc("env.hydrations")
        _ENVS[name] = worker_env
    return worker_env


def _pipeline():
    global _PIPELINE
    if _PIPELINE is None:
        from ..core.pipeline import default_pipeline

        _PIPELINE = default_pipeline()
    return _PIPELINE


# -- tasks ------------------------------------------------------------------


def advance_env(payload: dict) -> dict:
    """Advance one chunk; return the compact supervision delta."""
    worker_env = _hydrated(payload["spec"])
    with obs_worker.worker_span(
        "worker.advance",
        env=payload["spec"]["name"],
        sim_t=worker_env.env.clock,
        chunk_s=float(payload["chunk_s"]),
    ), obs_metrics.timed("env.advance_s"):
        detections = worker_env.advance(float(payload["chunk_s"]))
    obs_metrics.inc("env.chunks")
    if detections:
        obs_metrics.inc("env.detections", len(detections))
    return {
        "detections": [d.to_dict() for d in detections],
        "clock": worker_env.env.clock,
        "runs": len(worker_env.env.stores.runs.runs(worker_env.query_name)),
        "diagnosable": worker_env.diagnosable(),
        "bank": worker_env.bank.state_dict(),
        "run_detector": worker_env.run_detector.state_dict(),
    }


def diagnose_env(payload: dict) -> dict:
    """Run the diagnosis pipeline against the live worker-side bundle.

    Returns the ``report_to_dict`` form (what ``Incident.to_dict`` emits for
    a live report), plus the scenario-ground-truth grading when available —
    :func:`repro.core.evaluation.evaluate_report` only reads the report and
    the scenario info, so grading here equals grading in the parent.
    """
    from ..core.evaluation import evaluate_report
    from ..core.serialize import report_to_dict

    worker_env = _hydrated(payload["spec"])
    with obs_worker.worker_span(
        "worker.diagnose", env=payload["spec"]["name"], sim_t=worker_env.env.clock
    ), obs_metrics.timed("env.diagnose_s"):
        report = _pipeline().diagnose(worker_env.env.bundle(), worker_env.query_name)
    obs_metrics.inc("env.diagnoses")
    out: dict = {"report": report_to_dict(report)}
    info = worker_env.info
    if info is not None and info.ground_truth:
        evaluation = evaluate_report(
            ScenarioBundle(
                info=info,
                bundle=worker_env.env.bundle(),
                query_name=worker_env.query_name,
            ),
            report,
        )
        out["evaluation"] = {
            "verified": evaluation.top_cause in evaluation.ground_truth,
            "identified": evaluation.identified,
        }
    return out


def bundle_env(payload: dict) -> dict:
    """Export the full diagnosis bundle (fleet drill-down evidence)."""
    worker_env = _hydrated(payload["spec"])
    with obs_worker.worker_span(
        "worker.bundle", env=payload["spec"]["name"], sim_t=worker_env.env.clock
    ), obs_metrics.timed("env.bundle_s"):
        return worker_env.env.bundle().to_payload()


def load_detectors(payload: dict) -> dict:
    """Restore checkpointed detector state after a resume fast-forward."""
    worker_env = _hydrated(payload["spec"])
    worker_env.bank.load_state(payload["bank"])
    worker_env.run_detector.load_state(payload["run_detector"])
    return {"clock": worker_env.env.clock}


def reset_worker_state(payload: dict) -> dict:
    """Drop every cached environment/fabric (tests reuse worker processes)."""
    count = len(_ENVS)
    _ENVS.clear()
    _FABRICS.clear()
    return {"cleared": count}
