"""Online degradation detectors: O(1)-per-sample, fed by the collector tap.

The paper's workflow starts only after a human marks runs unsatisfactory.
These detectors close that gap: they consume the *raw* monitoring stream
(via :meth:`repro.monitor.Collector.add_metric_tap` /
:meth:`~repro.monitor.Collector.add_run_tap`) and flag degradations online,
each with O(1) state and O(1) work per sample:

* :class:`ThresholdSloDetector` — a fixed SLO limit with a consecutive-
  violation debounce;
* :class:`EwmaDriftDetector` — exponentially-weighted mean/variance drift
  detection (k-sigma excursions against a self-updating baseline);
* :class:`CusumDetector` — two-sided CUSUM change-point detection on
  standardised residuals, with reset-on-fire so successive shifts are each
  caught;
* :class:`ResponseTimeSloDetector` — the administrator replacement: it
  learns a per-query baseline duration from the first runs and auto-marks
  later runs satisfactory/unsatisfactory, emitting a detection for each SLO
  breach.

Firing cadence differs by detector — and incident-level dedup and cooldown
(:mod:`repro.stream.incidents`) fold every stream into few incidents:

* the threshold and EWMA detectors fire **once per excursion** (they re-arm
  only after the signal returns to normal), so a persistent fault produces
  one detection and a flapping fault one per flap;
* :class:`CusumDetector` resets its statistic on fire while keeping its
  baseline, so a shift that *persists* re-accumulates and re-fires
  periodically;
* :class:`ResponseTimeSloDetector` emits one detection **per breaching
  run** — each unsatisfactory run is fresh evidence, and it is what lets a
  resolved incident's target re-open after its cooldown while the fault
  still rages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..db.executor import QueryRun

__all__ = [
    "Detection",
    "Detector",
    "ThresholdSloDetector",
    "EwmaDriftDetector",
    "CusumDetector",
    "ResponseTimeSloDetector",
    "DetectorBank",
    "default_detector_factory",
]


@dataclass(frozen=True)
class Detection:
    """One online finding: a signal left its expected regime at ``time``.

    ``magnitude`` is normalised so 1.0 means "exactly at the trigger
    boundary"; incident severity derives from it.
    """

    time: float
    detector: str
    target: str
    value: float
    expected: float
    magnitude: float
    kind: str  # "slo" | "drift" | "change-point" | "recovery"
    details: dict = field(default_factory=dict, compare=False)

    def describe(self) -> str:
        return (
            f"[{self.detector}] {self.target} at t={self.time:.0f}: "
            f"value {self.value:.2f} vs expected {self.expected:.2f} "
            f"({self.magnitude:.1f}x trigger)"
        )

    def to_dict(self) -> dict:
        """JSON form — the shape incident tickets have always carried.

        ``details`` is diagnostic colour, not identity, and is deliberately
        dropped (it may hold non-JSON-able values from custom detectors).
        """
        return {
            "time": self.time,
            "detector": self.detector,
            "target": self.target,
            "value": self.value,
            "expected": self.expected,
            "magnitude": self.magnitude,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Detection":
        return cls(
            time=data["time"],
            detector=data["detector"],
            target=data["target"],
            value=data["value"],
            expected=data["expected"],
            magnitude=data["magnitude"],
            kind=data["kind"],
        )


class Detector(Protocol):
    """Protocol all online detectors implement.

    ``state_dict``/``load_state`` expose the learned state as a JSON-able
    dict so a supervisor checkpoint can freeze a detector mid-stream and a
    resumed process can continue it bit-for-bit (configuration — thresholds,
    alphas, warmups — is *not* part of the state: it is reconstructed by the
    factory, the state only carries what the stream taught the detector).
    """

    name: str

    def update(self, time: float, value: float) -> Detection | None:
        """Feed one sample; a detection when the signal leaves its regime."""
        ...

    def reset(self) -> None:
        """Forget all learned state."""
        ...

    def state_dict(self) -> dict:
        """JSON-able snapshot of the learned state."""
        ...

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        ...


class _Welford:
    """O(1) running mean/variance (used for warmup baselines)."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.n - 1))

    def state_dict(self) -> dict:
        return {"n": self.n, "mean": self.mean, "m2": self._m2}

    def load_state(self, state: dict) -> None:
        self.n = state["n"]
        self.mean = state["mean"]
        self._m2 = state["m2"]


class ThresholdSloDetector:
    """Fixed SLO: fire when ``min_consecutive`` samples exceed ``limit``.

    The debounce keeps single noisy spikes from opening incidents; the
    detector re-arms once a sample lands back under the limit.
    """

    def __init__(
        self,
        limit: float,
        min_consecutive: int = 1,
        target: str = "",
        *,
        emit_recovery: bool = False,
    ) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        if min_consecutive < 1:
            raise ValueError("min_consecutive must be >= 1")
        self.name = "threshold-slo"
        self.limit = limit
        self.min_consecutive = min_consecutive
        self.target = target
        #: When set, re-arming after a fired excursion also emits a
        #: ``kind="recovery"`` detection (the incident layer resolves on it).
        self.emit_recovery = emit_recovery
        self._streak = 0
        self._fired = False

    def update(self, time: float, value: float) -> Detection | None:
        if value <= self.limit:
            recovered = self._fired
            self._streak = 0
            self._fired = False
            if recovered and self.emit_recovery:
                return Detection(
                    time=time,
                    detector=self.name,
                    target=self.target,
                    value=value,
                    expected=self.limit,
                    magnitude=value / self.limit,
                    kind="recovery",
                )
            return None
        self._streak += 1
        if self._fired or self._streak < self.min_consecutive:
            return None
        self._fired = True
        return Detection(
            time=time,
            detector=self.name,
            target=self.target,
            value=value,
            expected=self.limit,
            magnitude=value / self.limit,
            kind="slo",
            details={"consecutive": self._streak},
        )

    def reset(self) -> None:
        self._streak = 0
        self._fired = False

    def state_dict(self) -> dict:
        return {"streak": self._streak, "fired": self._fired}

    def load_state(self, state: dict) -> None:
        self._streak = state["streak"]
        self._fired = state["fired"]


class EwmaDriftDetector:
    """EWMA drift detection: k-sigma excursions against a moving baseline.

    During ``warmup`` samples the baseline mean/std come from a Welford
    accumulator; afterwards both decay exponentially with weight ``alpha``.
    Anomalous samples are *not* absorbed into the baseline, so a sustained
    shift keeps looking anomalous instead of teaching the detector that the
    degraded level is normal.

    ``min_consecutive`` debounces the periodic single-sample spikes a raw
    per-tick monitoring stream carries (a query run elevates its volumes for
    one tick): only an excursion sustained for that many samples fires.
    """

    def __init__(
        self,
        alpha: float = 0.1,
        k_sigma: float = 5.0,
        warmup: int = 30,
        min_consecutive: int = 1,
        min_rel_std: float = 0.02,
        var_alpha: float | None = None,
        target: str = "",
        emit_recovery: bool = False,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if k_sigma <= 0 or warmup < 2:
            raise ValueError("k_sigma must be positive and warmup >= 2")
        if min_consecutive < 1:
            raise ValueError("min_consecutive must be >= 1")
        self.name = "ewma-drift"
        self.alpha = alpha
        self.k_sigma = k_sigma
        self.warmup = warmup
        self.min_consecutive = min_consecutive
        #: Noise floor as a fraction of the mean: monitoring streams can be
        #: near-constant, and a vanishing std would turn jitter into alerts.
        self.min_rel_std = min_rel_std
        #: The variance adapts much slower than the mean: a fast-moving
        #: variance estimate has a tiny effective sample size, and the
        #: resulting jitter in sigma turns plain noise into 5-sigma alerts.
        self.var_alpha = var_alpha if var_alpha is not None else alpha / 5.0
        self.target = target
        #: When set, the re-arm transition (signal back inside k-sigma after
        #: a fired excursion) emits a ``kind="recovery"`` detection.
        self.emit_recovery = emit_recovery
        self.reset()

    def reset(self) -> None:
        self._warm = _Welford()
        self._mean = 0.0
        self._var = 0.0
        self._streak = 0
        self._fired = False

    def state_dict(self) -> dict:
        return {
            "warm": self._warm.state_dict(),
            "mean": self._mean,
            "var": self._var,
            "streak": self._streak,
            "fired": self._fired,
        }

    def load_state(self, state: dict) -> None:
        self._warm = _Welford()
        self._warm.load_state(state["warm"])
        self._mean = state["mean"]
        self._var = state["var"]
        self._streak = state["streak"]
        self._fired = state["fired"]

    def update(self, time: float, value: float) -> Detection | None:
        if self._warm.n < self.warmup:
            self._warm.push(value)
            if self._warm.n == self.warmup:
                self._mean = self._warm.mean
                self._var = max(self._warm.std, self.min_rel_std * abs(self._warm.mean)) ** 2
            return None
        std = math.sqrt(self._var)
        floor = self.min_rel_std * abs(self._mean)
        std = max(std, floor, 1e-12)
        z = (value - self._mean) / std
        if abs(z) > self.k_sigma:
            self._streak += 1
            if self._fired or self._streak < self.min_consecutive:
                return None
            self._fired = True
            return Detection(
                time=time,
                detector=self.name,
                target=self.target,
                value=value,
                expected=self._mean,
                magnitude=abs(z) / self.k_sigma,
                kind="drift",
                details={"z": z, "sigma": std, "consecutive": self._streak},
            )
        recovered = self._fired
        self._streak = 0
        self._fired = False
        delta = value - self._mean
        self._mean += self.alpha * delta
        self._var = (1.0 - self.var_alpha) * (self._var + self.var_alpha * delta * delta)
        if recovered and self.emit_recovery:
            return Detection(
                time=time,
                detector=self.name,
                target=self.target,
                value=value,
                expected=self._mean,
                magnitude=abs(z) / self.k_sigma,
                kind="recovery",
                details={"z": z, "sigma": std},
            )
        return None


#: Std of a standard normal truncated to |z| < 2 — corrects the shrink that
#: in-control-only baseline refinement would otherwise bake into sigma.
_TRUNC2_STD = 0.8796


class CusumDetector:
    """Two-sided CUSUM change-point detector on standardised residuals.

    Baseline mean/std start from ``warmup`` samples, then keep refining from
    in-control samples (|z| < 2, with the truncation bias corrected): a
    frozen small-sample sigma estimate would otherwise inflate every z and
    wreck the average run length.  The classic tabular CUSUM accumulates
    ``max(0, s + z -/+ slack)`` per side and fires when either crosses
    ``threshold`` (both in sigma units).  Firing resets the statistic, so a
    second, later shift is detected afresh — the behaviour the flapping
    scenarios rely on.
    """

    def __init__(
        self,
        slack: float = 0.5,
        threshold: float = 8.0,
        warmup: int = 30,
        min_rel_std: float = 0.02,
        target: str = "",
    ) -> None:
        if slack < 0 or threshold <= 0 or warmup < 2:
            raise ValueError("need slack >= 0, threshold > 0, warmup >= 2")
        self.name = "cusum"
        self.slack = slack
        self.threshold = threshold
        self.warmup = warmup
        self.min_rel_std = min_rel_std
        self.target = target
        self.reset()

    def reset(self) -> None:
        self._warm = _Welford()
        self._refining = False
        self.s_pos = 0.0
        self.s_neg = 0.0

    def state_dict(self) -> dict:
        return {
            "warm": self._warm.state_dict(),
            "refining": self._refining,
            "s_pos": self.s_pos,
            "s_neg": self.s_neg,
        }

    def load_state(self, state: dict) -> None:
        self._warm = _Welford()
        self._warm.load_state(state["warm"])
        self._refining = state["refining"]
        self.s_pos = state["s_pos"]
        self.s_neg = state["s_neg"]

    def update(self, time: float, value: float) -> Detection | None:
        if self._warm.n < self.warmup:
            self._warm.push(value)
            return None
        std = self._warm.std / (_TRUNC2_STD if self._refining else 1.0)
        std = max(std, self.min_rel_std * abs(self._warm.mean), 1e-12)
        z = (value - self._warm.mean) / std
        self.s_pos = max(0.0, self.s_pos + z - self.slack)
        self.s_neg = max(0.0, self.s_neg - z - self.slack)
        stat = max(self.s_pos, self.s_neg)
        if stat <= self.threshold:
            if abs(z) < 2.0:
                self._warm.push(value)
                self._refining = True
            return None
        direction = "up" if self.s_pos >= self.s_neg else "down"
        # Reset-on-fire: the statistic restarts so the *next* change point
        # is accumulated from zero rather than riding this excursion.
        self.s_pos = 0.0
        self.s_neg = 0.0
        return Detection(
            time=time,
            detector=self.name,
            target=self.target,
            value=value,
            expected=self._warm.mean,
            magnitude=stat / self.threshold,
            kind="change-point",
            details={"direction": direction, "z": z, "sigma": std},
        )


class ResponseTimeSloDetector:
    """Auto-marking response-time SLO over a query's run stream.

    Replaces the administrator of Section 2: the first ``baseline_runs``
    runs define the satisfactory duration (their mean); every later run is
    marked satisfactory/unsatisfactory against ``factor`` times that
    baseline, directly on the :class:`~repro.db.executor.QueryRun` (which
    the run store shares).  Each unsatisfactory run yields a detection.
    """

    def __init__(
        self,
        factor: float = 1.3,
        baseline_runs: int = 4,
        query_name: str | None = None,
        *,
        emit_recovery: bool = False,
    ) -> None:
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        if baseline_runs < 1:
            raise ValueError("baseline_runs must be >= 1")
        self.name = "response-time-slo"
        self.factor = factor
        self.baseline_runs = baseline_runs
        self.query_name = query_name
        #: When set, the first satisfactory run after a breach emits a
        #: ``kind="recovery"`` detection for the query's target.
        self.emit_recovery = emit_recovery
        self.reset()

    def reset(self) -> None:
        self._baseline = _Welford()
        self._breached = False

    def state_dict(self) -> dict:
        return {"baseline": self._baseline.state_dict(), "breached": self._breached}

    def load_state(self, state: dict) -> None:
        self._baseline = _Welford()
        self._baseline.load_state(state["baseline"])
        self._breached = state.get("breached", False)

    @property
    def baseline_duration(self) -> float | None:
        if self._baseline.n < self.baseline_runs:
            return None
        return self._baseline.mean

    def observe_run(self, run: QueryRun) -> Detection | None:
        """Mark one finished run; a detection when it breaches the SLO."""
        if self.query_name is not None and run.query_name != self.query_name:
            return None
        baseline = self.baseline_duration
        if baseline is None:
            # Learning phase: the first runs are the satisfactory reference.
            self._baseline.push(run.duration)
            run.satisfactory = True
            return None
        limit = self.factor * baseline
        if run.duration <= limit:
            run.satisfactory = True
            # Healthy runs keep refining the baseline (slow drift tracking).
            self._baseline.push(run.duration)
            recovered = self._breached
            self._breached = False
            if recovered and self.emit_recovery:
                return Detection(
                    time=run.end_time,
                    detector=self.name,
                    target=f"run:{run.query_name}",
                    value=run.duration,
                    expected=baseline,
                    magnitude=run.duration / limit,
                    kind="recovery",
                    details={"run_id": run.run_id, "limit": limit},
                )
            return None
        run.satisfactory = False
        self._breached = True
        return Detection(
            time=run.end_time,
            detector=self.name,
            target=f"run:{run.query_name}",
            value=run.duration,
            expected=baseline,
            magnitude=run.duration / limit,
            kind="slo",
            details={"run_id": run.run_id, "limit": limit},
        )

    def update(self, time: float, value: float) -> Detection | None:
        raise NotImplementedError(
            "ResponseTimeSloDetector consumes QueryRun objects via observe_run()"
        )


@dataclass
class DetectorBank:
    """Routes the raw metric stream to per-series detector instances.

    ``factory(component_id, metric)`` returns a fresh detector for a series
    the bank should watch, or None to ignore it.  The bank materialises
    detectors lazily as series first appear — new components (e.g. a
    misconfigured volume created mid-simulation) are picked up automatically.
    """

    factory: "DetectorFactory"
    detectors: dict[tuple[str, str], Detector] = field(default_factory=dict)
    _ignored: set[tuple[str, str]] = field(default_factory=set, repr=False)

    def observe(
        self, time: float, component_id: str, metric: str, value: float
    ) -> Detection | None:
        key = (component_id, metric)
        if key in self._ignored:
            return None
        detector = self.detectors.get(key)
        if detector is None:
            detector = self.factory(component_id, metric)
            if detector is None:
                self._ignored.add(key)
                return None
            if not getattr(detector, "target", ""):
                detector.target = f"{component_id}/{metric}"
            self.detectors[key] = detector
        return detector.update(time, value)

    def reset(self) -> None:
        for detector in self.detectors.values():
            detector.reset()

    def state_dict(self) -> dict:
        """Learned state of every materialised detector + the ignore set."""
        return {
            "detectors": [
                [cid, metric, detector.state_dict()]
                for (cid, metric), detector in sorted(self.detectors.items())
            ],
            "ignored": sorted(list(key) for key in self._ignored),
        }

    def load_state(self, state: dict) -> None:
        """Re-materialise detectors through the factory, then restore state.

        The factory must be the same policy that produced the checkpoint; a
        series the factory now declines is skipped (its state is dropped).
        """
        self.detectors.clear()
        self._ignored = {(cid, metric) for cid, metric in state.get("ignored", [])}
        for cid, metric, det_state in state.get("detectors", []):
            detector = self.factory(cid, metric)
            if detector is None:
                continue
            if not getattr(detector, "target", ""):
                detector.target = f"{cid}/{metric}"
            detector.load_state(det_state)
            self.detectors[(cid, metric)] = detector


class DetectorFactory(Protocol):
    def __call__(self, component_id: str, metric: str) -> Detector | None: ...


def default_detector_factory(
    metrics: Iterable[str] = ("readTime",),
    *,
    k_sigma: float = 5.0,
    warmup: int = 30,
    min_consecutive: int = 3,
    emit_recovery: bool = False,
) -> DetectorFactory:
    """The stock fleet-watch policy: EWMA drift on volume response times.

    Volume ``readTime`` is the signal the paper's own degradation trigger
    watches; the factory ignores every other series so a bank stays
    O(#volumes).  ``min_consecutive`` defaults to 3 because a query run
    elevates its volumes' raw latency for a single tick — only contention
    sustained across ticks (an actual fault) should open incidents.
    """
    watched = set(metrics)

    def factory(component_id: str, metric: str) -> Detector | None:
        if metric not in watched:
            return None
        return EwmaDriftDetector(
            k_sigma=k_sigma,
            warmup=warmup,
            min_consecutive=min_consecutive,
            emit_recovery=emit_recovery,
        )

    return factory
