"""Fleet supervisor: barrier-free supervision of many environments.

This is the closed loop the offline workflow lacks.  A
:class:`FleetSupervisor` owns a set of watched environments and advances
each of them **on its own clock** over the shared execution substrate
(:mod:`repro.runtime`): one cooperative task per environment interleaves on
an asyncio scheduler, while simulation chunks and diagnosis pipelines run on
the shared worker pool.  Per environment, each iteration:

1. **advance** — the environment simulates one chunk on a pool thread; the
   collector's streaming tap feeds every raw metric append and finished
   query run to the environment's detectors as it happens (no polling);
2. **detect** — detections are folded into incidents with dedup + cooldown
   (:mod:`repro.stream.incidents`); the response-time SLO detector has
   already auto-marked runs, replacing the administrator's marking step;
3. **diagnose** — open incidents whose environment has a diagnosable query
   get a ``DiagnosisBundle`` snapshot and a pipeline run *submitted* to the
   runtime (``DiagnosisPipeline.submit_many``).  Only the affected
   environment waits for its report; the rest of the fleet keeps advancing —
   a slow diagnosis no longer barriers anyone else's next chunk.

Checkpoint writes are off the hot loop: environment tasks stash a snapshot
at each iteration boundary and set a dirty flag; a batched flusher task
writes the (per-environment clock-vector) checkpoint at a wall-clock cadence
and once more at quiesce.  Determinism is preserved per environment — the
simulation, detection, and diagnosis of one environment form a single
sequential program — so a killed-and-resumed run still reproduces the
uninterrupted incident history byte-for-byte, and the barriered
:meth:`FleetSupervisor.tick` compatibility path produces the same per-
environment history as the barrier-free :meth:`FleetSupervisor.run`.

No human is in the loop: faults open incidents, incidents carry ranked root
causes, and ``repro watch`` renders the fleet table live from the runtime's
event stream.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..core.evaluation import evaluate_report
from ..core.pipeline import DiagnosisPipeline, DiagnosisRequest, default_pipeline
from ..lab.environment import Environment
from ..lab.scenarios import Scenario, ScenarioBundle, ScenarioInfo
from ..obs import OBS_DIR, span
from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..runtime import ClockVector, Scheduler, WorkerPool, shared_pool
from ..storage.backend import atomic_write_json
from ..storage.jsonl import JsonlBackend
from .detectors import (
    Detection,
    DetectorBank,
    ResponseTimeSloDetector,
    default_detector_factory,
)
from .eventlog import FleetEventLog
from .incidents import Incident, IncidentManager, IncidentState, IncidentStore
from .remote import RemoteDiagnosisRequest, RemoteReport, RemoteWatchedEnvironment

__all__ = ["WatchedEnvironment", "FleetSupervisor", "FleetEvent"]

#: File name of the atomic resume checkpoint inside a state dir.
CHECKPOINT_FILE = "checkpoint.json"

#: A fleet event: plain dict with at least a ``type`` key; the stream the
#: CLI's live table renders from.  Types: ``advanced``, ``incident_opened``,
#: ``diagnosis_started``, ``incident_resolved``, ``env_done``, ``fleet_done``,
#: ``checkpoint``.
FleetEvent = dict


@dataclass
class WatchedEnvironment:
    """One environment under supervision: detectors + incident bookkeeping."""

    name: str
    env: Environment
    query_name: str
    bank: DetectorBank
    run_detector: ResponseTimeSloDetector
    manager: IncidentManager
    info: ScenarioInfo | None = None
    #: Simulated seconds this environment has covered under supervision.
    #: With per-environment clocks this is *this member's* progress, not the
    #: fleet's — the supervisor's clock vector aggregates across members.
    advanced_s: float = 0.0
    #: Detections accumulated by the taps during the current chunk; drained
    #: by the supervisor after the advance phase (taps run on the single
    #: thread advancing this environment, so no further locking is needed).
    _pending: list[Detection] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.env.collector.add_metric_tap(self._on_metric)
        self.env.collector.add_run_tap(self._on_run)

    # -- tap callbacks ---------------------------------------------------
    def _on_metric(self, time: float, component_id: str, metric: str, value: float) -> None:
        detection = self.bank.observe(time, component_id, metric, value)
        if detection is not None:
            self._pending.append(detection)

    def _on_run(self, run) -> None:
        detection = self.run_detector.observe_run(run)
        if detection is not None:
            self._pending.append(detection)

    # -- chunk lifecycle -------------------------------------------------
    def advance(self, chunk_s: float) -> list[Detection]:
        """Advance the simulation one chunk; drain the tap detections."""
        self.env.advance(chunk_s)
        drained, self._pending = self._pending, []
        return drained

    def diagnosable(self) -> bool:
        """True once the watched query has runs labelled on both sides."""
        runs = self.env.stores.runs
        return bool(
            runs.satisfactory_runs(self.query_name)
            and runs.unsatisfactory_runs(self.query_name)
        )

    def diagnosis_request(self) -> DiagnosisRequest:
        """A submittable diagnosis for this environment's current bundle.

        Remote (process-backed) environments override this to route the
        pipeline run into their sticky worker instead of snapshotting a
        bundle here.
        """
        return DiagnosisRequest(self.env.bundle(), self.query_name)

    # -- reporting -------------------------------------------------------
    def status(self) -> dict:
        """One fleet-table row.

        When scenario ground truth is known, the latest attached report is
        graded through :func:`repro.core.evaluation.evaluate_report` — the
        same rules as the offline sweep.  ``verified`` means the top-ranked
        cause is an injected one; ``identified`` is the sweep's stricter
        verdict (every injected cause also at high confidence).
        """
        incidents = self.manager.incidents
        last = incidents[-1] if incidents else None
        top = last.top_cause_id if last is not None else None
        ground_truth = self.info.ground_truth if self.info is not None else ()
        verified = identified = None
        if last is not None and last.report is not None and self.info is not None:
            evaluation = evaluate_report(
                ScenarioBundle(
                    info=self.info,
                    bundle=self.env.bundle(),
                    query_name=self.query_name,
                ),
                last.report,
            )
            verified = evaluation.top_cause in evaluation.ground_truth
            identified = evaluation.identified
        return {
            "env": self.name,
            "query": self.query_name,
            "clock": self.env.clock,
            "runs": len(self.env.stores.runs.runs(self.query_name)),
            "detections": sum(len(i.detections) for i in incidents)
            + self.manager.suppressed,
            "incidents": len(incidents),
            "open": len(self.manager.open_incidents())
            + len(self.manager.diagnosing_incidents()),
            "suppressed": self.manager.suppressed,
            "state": last.state.value if last is not None else "healthy",
            "severity": last.severity.value if last is not None else "-",
            "top_cause": top,
            "ground_truth": ground_truth,
            "verified": verified,
            "identified": identified,
        }


class FleetSupervisor:
    """Advance a fleet of environments and close the detect→diagnose loop.

    Two execution paths share all detection/diagnosis semantics:

    * :meth:`run` — the barrier-free path: one cooperative task per
      environment on the :class:`~repro.runtime.Scheduler`, diagnosis waves
      overlapping other members' advances, checkpoints batched off the hot
      loop.  This is what ``repro watch`` drives.
    * :meth:`tick` — the barriered compatibility path: the whole fleet
      advances one chunk in lock-step, then diagnoses as a wave.  Kept for
      incremental callers (and as the baseline the throughput benchmark
      measures the runtime against); per-environment incident histories are
      identical between the two paths.
    """

    def __init__(
        self,
        pipeline: DiagnosisPipeline | None = None,
        *,
        chunk_s: float = 1800.0,
        max_workers: int | None = None,
        cooldown_s: float = 7200.0,
        slo_factor: float = 1.3,
        baseline_runs: int = 4,
        state_dir: str | os.PathLike | None = None,
        checkpoint_meta: dict | None = None,
        max_inflight_diagnoses: int | None = None,
        checkpoint_interval_s: float = 2.0,
        pool: WorkerPool | None = None,
        correlator=None,
        max_skew_s: float | None = None,
        recovery: bool = False,
        incident_store: "IncidentStore | None" = None,
        event_log: "FleetEventLog | None" = None,
    ) -> None:
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        if max_inflight_diagnoses is not None and max_inflight_diagnoses < 1:
            raise ValueError("max_inflight_diagnoses must be at least 1")
        if checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")
        if max_skew_s is not None and max_skew_s < chunk_s:
            raise ValueError(
                "max_skew_s must be at least chunk_s (a member cannot advance "
                "by less than one chunk)"
            )
        self.pipeline = pipeline or default_pipeline()
        self.chunk_s = chunk_s
        self.max_workers = max_workers
        self.cooldown_s = cooldown_s
        self.slo_factor = slo_factor
        self.baseline_runs = baseline_runs
        #: Cap on diagnosis pipelines in flight at once across the fleet
        #: (None: bounded only by the worker pool).  ``repro watch
        #: --max-inflight-diagnoses`` sets this.
        self.max_inflight_diagnoses = max_inflight_diagnoses
        #: Wall-clock cadence of the batched checkpoint flusher.
        self.checkpoint_interval_s = checkpoint_interval_s
        #: Worker pool for advances and diagnoses (default: process-shared).
        self.pool = pool
        self.watched: dict[str, WatchedEnvironment] = {}
        self.ticks = 0
        self.state_dir = Path(state_dir) if state_dir is not None else None
        #: Caller-supplied run parameters (scenario names, hours, seed...)
        #: stamped into every checkpoint; resume() refuses a checkpoint whose
        #: meta differs, since the rebuilt fleet would not be the same
        #: deterministic simulation the checkpoint froze.
        self.checkpoint_meta = checkpoint_meta
        #: Recovery-aware incident closure: detectors also emit
        #: ``kind="recovery"`` when a fired excursion returns to baseline,
        #: the manager resolves the open incident with
        #: ``resolution="recovered"``, and a regression inside the cooldown
        #: window re-opens with a predecessor link and a severity bump
        #: instead of being suppressed.  Off by default (the historical
        #: diagnose-to-resolve lifecycle).
        self.recovery = recovery
        #: Durable incident journal (None without a state dir); managers of
        #: watched environments journal their transitions through it.  An
        #: injected store (``repro serve``: a tenant-prefixed view over one
        #: shared backend) takes precedence over opening ``state_dir``.
        self.incident_store: IncidentStore | None = (
            incident_store
            if incident_store is not None
            else IncidentStore.open(self.state_dir)
            if self.state_dir is not None
            else None
        )
        #: Durable fleet event log (None without a state dir): every event of
        #: the ``run(on_event=...)`` stream is journalled so dashboards and
        #: the out-of-process correlator can tail the state dir.  Delivery
        #: across a kill/resume is at-least-once (see FleetEventLog).  Like
        #: the incident store, an injected log wins over the state-dir one.
        self.event_log: FleetEventLog | None = (
            event_log
            if event_log is not None
            else FleetEventLog.open(self.state_dir)
            if self.state_dir is not None
            else None
        )
        #: Opt-in cross-environment correlator (a
        #: :class:`repro.correlate.CorrelationEngine`).  When set, incident
        #: opens/resolves and per-member progress are streamed into it; a
        #: member incident grouped into a fleet incident is resolved with the
        #: fleet-level drill-down report instead of paying its own pipeline
        #: run, and incidents of attached environments are *held* (stay OPEN)
        #: while siblings may still co-fire.  Trade-off: with a correlator,
        #: the wall-clock moment an attached member notices a fleet decision
        #: depends on fleet progress, so per-member diagnosis timing is no
        #: longer independent of the rest of the fleet — the fleet-incident
        #: history itself stays deterministic (watermark-ordered).
        self.correlator = correlator
        #: Bound on fleet clock skew (simulated seconds) in the barrier-free
        #: loop: a member whose next chunk would put it more than
        #: ``max_skew_s`` ahead of the slowest member waits for the fleet
        #: floor to catch up.  None (default): unbounded, PR-4 behaviour.
        #: Bounding skew caps the correlator's group-emit latency (its
        #: watermark is the fleet floor) at the cost of letting a straggler
        #: eventually gate the whole fleet.
        self.max_skew_s = max_skew_s
        #: Latest per-environment snapshot, refreshed at iteration
        #: boundaries; what the batched flusher persists.
        self._env_snapshots: dict[str, dict] = {}
        self._checkpoint_dirty = False
        #: Graceful-stop flag: settable from any thread; environment tasks
        #: finish their current iteration, a final checkpoint is written,
        #: and :meth:`run` returns early (the run stays resumable).
        self._stop_requested = threading.Event()
        #: Serialises checkpoint writes: a flusher write cancelled mid-await
        #: may still be running on its pool thread when the quiesce write
        #: starts, and both share one tmp-file name — unserialised, the
        #: loser's atomic rename finds its tmp already consumed.
        self._checkpoint_write_lock = threading.Lock()
        #: Observability sidecar backend (``<state_dir>/obs/``): span
        #: journal + periodic metrics snapshots.  Strictly write-only from
        #: the run's perspective — the checkpoint/resume path never opens
        #: it, so the byte-for-byte incident-history guarantee cannot see
        #: it.  None without a state dir or with observability off.
        self.obs_backend: JsonlBackend | None = (
            JsonlBackend(self.state_dir / OBS_DIR)
            if self.state_dir is not None and obs_clock.is_enabled()
            else None
        )

    # -- sizing ----------------------------------------------------------
    def _workers(self, fleet_size: int) -> int:
        """Fan-out width for a fleet of ``fleet_size`` — never less than 1.

        (The pre-runtime code computed ``max_workers or min(8, len(fleet))``,
        which is 0 for an empty fleet and made ``ThreadPoolExecutor`` raise.)
        """
        return max(1, self.max_workers or min(8, fleet_size))

    def _pool(self) -> WorkerPool:
        return self.pool if self.pool is not None else shared_pool()

    def pool_stats(self) -> dict:
        """Live counters of the worker pool this fleet runs on.

        Whatever :meth:`WorkerPool.stats` reports for the pool in use —
        the supervisor's own or the process-wide shared one.  Rendering
        only; never part of :meth:`to_dict` (checkpoint equivalence
        compares that byte for byte).
        """
        return self._pool().stats()

    # -- registration ----------------------------------------------------
    def watch(
        self,
        name: str,
        env: Environment,
        query_name: str,
        *,
        detector_factory: Callable | None = None,
        info: ScenarioInfo | None = None,
    ) -> WatchedEnvironment:
        """Put one environment under supervision."""
        if name in self.watched:
            raise ValueError(f"environment {name!r} already watched")
        watched = WatchedEnvironment(
            name=name,
            env=env,
            query_name=query_name,
            bank=DetectorBank(
                factory=detector_factory
                or default_detector_factory(emit_recovery=self.recovery)
            ),
            run_detector=ResponseTimeSloDetector(
                factor=self.slo_factor,
                baseline_runs=self.baseline_runs,
                query_name=query_name,
                emit_recovery=self.recovery,
            ),
            manager=IncidentManager(
                name, cooldown_s=self.cooldown_s, store=self.incident_store
            ),
            info=info,
        )
        self.watched[name] = watched
        return watched

    def watch_scenario(
        self,
        scenario: Scenario,
        name: str | None = None,
        *,
        hydration: dict | None = None,
    ) -> WatchedEnvironment:
        """Build a scenario's environment and watch it (ground truth kept
        aside for verification only — detectors never see it).

        ``hydration`` is the scenario's registry identity (name, hours, seed
        — see :mod:`repro.stream.worker`).  When provided *and* this
        supervisor runs on a process-backed pool, the environment is built
        and simulated inside its sticky worker instead of here; otherwise it
        is ignored and the environment is built in-process as always.
        """
        if hydration is not None and getattr(self._pool(), "backend", "threads") == "process":
            return self.watch_remote(
                name or scenario.info.name,
                hydration,
                scenario.query_name,
                info=scenario.info,
            )
        return self.watch(
            name or scenario.info.name,
            scenario.build(),
            scenario.query_name,
            info=scenario.info,
        )

    def watch_remote(
        self,
        name: str,
        hydration: dict,
        query_name: str,
        *,
        info: ScenarioInfo | None = None,
    ) -> "RemoteWatchedEnvironment":
        """Watch an environment that lives in a procpool worker process.

        The simulator and streaming detectors hydrate (from ``hydration``,
        the scenario registry identity) and advance inside the worker pinned
        by ``affinity=name``; the incident manager — and with it the entire
        checkpoint/resume and correlation machinery — stays in this process.
        """
        pool = self._pool()
        if getattr(pool, "backend", "threads") != "process":
            raise ValueError("watch_remote requires a process-backed worker pool")
        if name in self.watched:
            raise ValueError(f"environment {name!r} already watched")
        spec = dict(hydration)
        spec.update(
            slo_factor=self.slo_factor,
            baseline_runs=self.baseline_runs,
            recovery=self.recovery,
        )
        watched = RemoteWatchedEnvironment(
            name=name,
            spec=spec,
            query_name=query_name,
            manager=IncidentManager(
                name, cooldown_s=self.cooldown_s, store=self.incident_store
            ),
            pool=pool,
            info=info,
        )
        self.watched[name] = watched
        return watched

    # -- fleet progress --------------------------------------------------
    @property
    def clocks(self) -> ClockVector:
        """Per-environment simulated progress (the checkpoint clock vector)."""
        return ClockVector({name: w.advanced_s for name, w in self.watched.items()})

    @property
    def advanced_s(self) -> float:
        """Simulated seconds the *whole* fleet is guaranteed to have covered
        (the minimum over per-environment clocks; computed directly — this
        is read on the coordination hot path)."""
        return min(
            (w.advanced_s for w in self.watched.values()), default=0.0
        )

    # -- shared per-iteration semantics ----------------------------------
    def _fold_detections(
        self, watched: WatchedEnvironment, detections: list[Detection]
    ) -> tuple[list[Incident], list[Incident]]:
        """Feed one chunk's detections to the manager.

        Returns ``(opened, recovered)``: incidents this chunk opened, and
        incidents the manager recovery-resolved because their series
        returned to baseline (always empty unless the supervisor was built
        with ``recovery=True``).  Both are fed to the correlator here so the
        barriered and barrier-free loops see the identical event sequence.
        """
        opened: list[Incident] = []
        obs_metrics.inc("detectors.fires", len(detections))
        for detection in detections:
            incident = watched.manager.observe(detection)
            if incident is not None:
                opened.append(incident)
        recovered = watched.manager.drain_recoveries()
        if opened:
            obs_metrics.inc("incidents.opened", len(opened))
        if recovered:
            obs_metrics.inc("incidents.recovered", len(recovered))
        for incident in opened:
            self._drill_down(
                self._correlate(
                    {
                        "type": "incident_opened",
                        "env": watched.name,
                        "incident_id": incident.incident_id,
                        "opened_at": incident.opened_at,
                    }
                )
            )
        for incident in recovered:
            self._drill_down(
                self._correlate(
                    {
                        "type": "incident_resolved",
                        "env": watched.name,
                        "incident_id": incident.incident_id,
                        "resolved_at": incident.resolved_at,
                    }
                )
            )
        return opened, recovered

    # -- cross-environment correlation -----------------------------------
    def _correlate(self, event: FleetEvent) -> list:
        """Feed the correlator; returns fleet incidents ready for drill-down.

        Only progress (``advanced``) feeds can surface ready groups — opens
        and resolves are merely buffered — so most call sites get an empty
        list.  The barriered :meth:`tick` runs the drill-down synchronously
        (:meth:`_drill_down`); the barrier-free :meth:`_drive` bridges it
        onto the worker pool so the cross-bundle analysis (and the sibling
        advance locks it takes) never stalls the coordination loop.
        """
        if self.correlator is None:
            return []
        return self.correlator.observe(event)

    def _drill_down(self, groups) -> None:
        for group in groups:
            self._on_fleet_incident(group)

    def _on_fleet_incident(self, group) -> None:
        """Snapshot member bundles and attach the fleet-level report."""
        from ..correlate.diagnosis import diagnose_fleet_incident

        bundles = {}
        queries = {}
        locks = {}
        for env in group.member_envs:
            watched = self.watched.get(env)
            if watched is None:
                continue
            bundles[env] = watched.env.bundle()
            queries[env] = watched.query_name
            # A sibling member may be mid-chunk on a pool thread while its
            # evidence is read: hold its advance lock per member.
            lock = getattr(watched.env, "advance_lock", None)
            if lock is not None:
                locks[env] = lock
        diagnosis = diagnose_fleet_incident(
            group,
            bundles,
            queries,
            self.correlator.membership,
            # The engine surfaces a group once the watermark passed
            # opened_at + drilldown_delay_s — the cutoff must not read
            # beyond what every member clock has provably covered.
            until=group.opened_at + self.correlator.drilldown_delay_s,
            locks=locks,
        )
        self.correlator.attach_report(group.fleet_id, diagnosis.to_report_data())

    def _final_correlation_sweep(
        self, fleet: list[WatchedEnvironment], on_event
    ) -> None:
        """Short-circuit sweep once the fleet is quiescent.

        A grouping decided by the *final* watermark advance can postdate a
        fast member's last iteration — that member would never run another
        short-circuit pass, leaving its grouped incidents open purely by
        wall-clock accident.  At quiesce the watermark is final and every
        grouping is decided, so one sweep resolves whatever a fleet report
        covers (at the group's deterministic open time), drains the
        engine's buffered resolutions, and refreshes the affected members'
        checkpoint snapshots.

        Skipped after an early :meth:`stop`: the fleet floor is then NOT
        final — draining the engine past it would consume fast members'
        buffered opens that slow members' (not yet re-emitted) opens should
        have grouped with, diverging from the uninterrupted history on
        resume.  A stopped run simply leaves the tail for its successor.
        """
        if self.correlator is None or self._stop_requested.is_set():
            return
        # Two rounds: the first drains resolutions and drills any group the
        # final watermark surfaced; the second short-circuits the member
        # incidents that drill-down just covered.
        for _round in range(2):
            for watched in fleet:
                resolved = self._apply_fleet_short_circuit(watched, on_event)
                if resolved and self.state_dir is not None:
                    self._env_snapshots[watched.name] = self._snapshot_env(watched)
            # Resolutions fed above sit at or below the final watermark;
            # drain them so fleet incidents complete their own lifecycle.
            self._drill_down(self.correlator.finalize())

    def _apply_fleet_short_circuit(
        self, watched: WatchedEnvironment, on_event=None
    ) -> list[Incident]:
        """Resolve member incidents whose shared cause a fleet report names.

        A grouped incident never pays its own pipeline run: it is resolved
        with the fleet-level report, at the *group's* open time (a
        deterministic simulated time), and the engine is told so the fleet
        incident can complete its own lifecycle.  Every transition is also
        emitted (and therefore journalled in the fleet event log) with its
        deterministic simulated time, so an out-of-process correlator
        tailing the log reconstructs the identical history.
        """
        if self.correlator is None:
            return []
        resolved: list[Incident] = []
        for incident in watched.manager.open_incidents():
            ticket = self.correlator.short_circuit(incident.incident_id)
            if ticket is None:
                continue
            _fleet_id, group_opened_at, report_data = ticket
            resolve_at = max(incident.opened_at, group_opened_at)
            # Detections absorbed after the (deterministic, simulated)
            # resolve instant belong to the post-resolution world: this
            # member only *noticed* the fleet decision at some wall-clock
            # moment, and everything it absorbed in between must be
            # re-routed through the manager so cooldown suppression — and
            # any successor incident — lands at simulated times independent
            # of that wall-clock lag.
            late = sorted(
                (d for d in incident.detections if d.time > resolve_at),
                key=lambda d: d.time,
            )
            if late:
                incident.detections = [
                    d for d in incident.detections if d.time <= resolve_at
                ]
                incident.deduped -= len(late)
            incident.report_data = report_data
            watched.manager.resolve(incident, resolve_at)
            self._drill_down(
                self._correlate(
                    {
                        "type": "incident_resolved",
                        "env": watched.name,
                        "incident_id": incident.incident_id,
                        "resolved_at": incident.resolved_at,
                    }
                )
            )
            self._emit(
                on_event,
                {
                    "type": "incident_resolved",
                    "env": watched.name,
                    "incident_id": incident.incident_id,
                    "severity": incident.severity.value,
                    "top_cause": incident.top_cause_id,
                    "fleet": True,
                    "resolved_at": incident.resolved_at,
                    "clock": watched.env.clock,
                },
            )
            resolved.append(incident)
            for detection in late:
                reopened = watched.manager.observe(detection)
                if reopened is not None:
                    self._drill_down(
                        self._correlate(
                            {
                                "type": "incident_opened",
                                "env": watched.name,
                                "incident_id": reopened.incident_id,
                                "opened_at": reopened.opened_at,
                            }
                        )
                    )
                    self._emit(
                        on_event,
                        {
                            "type": "incident_opened",
                            "env": watched.name,
                            "incident_id": reopened.incident_id,
                            "severity": reopened.severity.value,
                            "opened_at": reopened.opened_at,
                        },
                    )
        return resolved

    def _begin_diagnosis_wave(
        self, watched: WatchedEnvironment
    ) -> tuple[list[Incident], DiagnosisRequest] | None:
        """Open incidents → DIAGNOSING + a bundle-snapshot request, if due.

        An environment whose watched query has both labels gets ONE bundle
        snapshot and ONE pipeline run; every incident it opened shares that
        report (several detection targets firing together would otherwise
        pay for the six-module pipeline once each).  Incidents stay OPEN
        until labelled runs exist on both sides.
        """
        open_incidents = watched.manager.open_incidents()
        if self.correlator is not None:
            # Only *independent* incidents pay a per-member pipeline run:
            # grouped ones are short-circuited with the fleet report, and
            # incidents whose siblings may still co-fire stay OPEN (held)
            # until the correlator's watermark passes their window.
            open_incidents = [
                incident
                for incident in open_incidents
                if self.correlator.disposition(
                    incident.incident_id, watched.name, incident.opened_at
                )
                == "independent"
            ]
        if not open_incidents or not watched.diagnosable():
            return None
        clock = watched.env.clock
        for incident in open_incidents:
            watched.manager.begin_diagnosis(incident, clock)
        return open_incidents, watched.diagnosis_request()

    def _resolve_wave(
        self, watched: WatchedEnvironment, incidents: list[Incident], report
    ) -> list[Incident]:
        """Attach the report and resolve at the clock diagnosis began.

        The resolve clock is the environment clock captured when the wave
        was submitted — a deterministic simulated time, never wall time —
        so overlapped execution cannot perturb the incident history.

        A :class:`RemoteReport` (worker-process diagnosis) resolves through
        ``report_data`` — the same serialized-report path fleet
        short-circuits use, so `Incident.to_dict` output is byte-identical
        to thread mode's live-report serialization.
        """
        clock = watched.env.clock
        for incident in incidents:
            if isinstance(report, RemoteReport):
                incident.report_data = report.report_data
                watched.manager.resolve(incident, clock)
                watched.record_evaluation(incident.incident_id, report.evaluation)
            else:
                watched.manager.resolve(incident, clock, report)
            self._drill_down(
                self._correlate(
                    {
                        "type": "incident_resolved",
                        "env": watched.name,
                        "incident_id": incident.incident_id,
                        "resolved_at": clock,
                    }
                )
            )
        return incidents

    # -- the barriered compatibility loop --------------------------------
    def tick(self, chunk_s: float | None = None) -> list[Incident]:
        """Advance the fleet one chunk in lock-step; incidents resolved.

        ``chunk_s`` overrides the configured chunk for this tick only (used
        to clamp the final chunk of a bounded run).  This is the PR-2 era
        barriered loop kept as the incremental/compatibility surface: every
        environment advances the same chunk, then one fleet-wide diagnosis
        wave runs to completion before the tick returns.  Prefer
        :meth:`run` — the barrier-free path — for fleets where a slow
        diagnosis must not stall other members.
        """
        if not self.watched:
            raise ValueError("no environments watched")
        chunk = chunk_s if chunk_s is not None else self.chunk_s
        fleet = list(self.watched.values())
        workers = self._workers(len(fleet))
        self._attach_obs()

        with span("tick", sim_t=self.advanced_s, chunk_s=chunk):
            # Phase 1 — advance all environments concurrently on the shared
            # pool.  Each environment is touched by exactly one worker at a
            # time; detections buffer per-env.
            with span("advance"):
                if workers > 1 and len(fleet) > 1:
                    batches = self._pool().map_bounded(
                        lambda w: w.advance(chunk), fleet, limit=workers
                    )
                else:
                    batches = [w.advance(chunk) for w in fleet]

            # Phase 2 — fold detections into incidents (dedup + cooldown).
            recovered: list[Incident] = []
            with span("detect"):
                for watched, detections in zip(fleet, batches):
                    watched.advanced_s += chunk
                    _opened, env_recovered = self._fold_detections(
                        watched, detections
                    )
                    recovered.extend(env_recovered)

            # Phase 3 — fleet-wide diagnosis wave (the barrier this method
            # is named for): submit every due environment's request as a
            # batch and wait for all reports.  Incidents a fleet report
            # already covers are short-circuited instead of entering the
            # wave.
            wave: list[tuple[WatchedEnvironment, list[Incident]]] = []
            requests: list[DiagnosisRequest] = []
            resolved: list[Incident] = list(recovered)
            with span("diagnose"):
                for watched in fleet:
                    resolved.extend(self._apply_fleet_short_circuit(watched))
                    due = self._begin_diagnosis_wave(watched)
                    if due is None:
                        continue
                    incidents, request = due
                    wave.append((watched, incidents))
                    requests.append(request)
                if wave:
                    futures = [
                        self._submit_diagnosis(request) for request in requests
                    ]
                    for (watched, incidents), future in zip(wave, futures):
                        resolved.extend(
                            self._resolve_wave(watched, incidents, future.result())
                        )
            # Progress is fed to the correlator last, mirroring the barrier-
            # free loop: the watermark only moves once this tick's opens and
            # resolves are buffered, so both execution paths process the
            # identical simulated-time sequence.
            with span("correlate"):
                for watched in fleet:
                    self._drill_down(
                        self._correlate(
                            {
                                "type": "advanced",
                                "env": watched.name,
                                "advanced_s": watched.advanced_s,
                            }
                        )
                    )
            self.ticks += 1
            self.checkpoint()
        return resolved

    # -- the barrier-free loop -------------------------------------------
    def run(
        self,
        duration_s: float,
        on_tick: Callable[[list[Incident], float], None] | None = None,
        *,
        on_event: Callable[[FleetEvent], None] | None = None,
    ) -> list[Incident]:
        """Advance every environment to ``advanced_s + duration_s``; all
        incidents.

        Barrier-free: each watched environment runs on its own clock as a
        cooperative task over the runtime scheduler.  Chunks are clamped so
        a duration that is not a multiple of ``chunk_s`` does not overshoot
        the scenario's designed end.  Environments resumed at uneven clocks
        (a checkpoint written mid-overlap) each advance only what *they*
        are missing.

        ``on_event(event)`` receives the live fleet event stream (see
        :data:`FleetEvent`) — what ``repro watch`` renders from.
        ``on_tick(resolved, elapsed)`` is retained for pre-runtime callers:
        it fires after every environment iteration with the incidents that
        iteration resolved and the fleet's guaranteed covered duration for
        this call (no longer a global tick boundary).

        :meth:`stop` (any thread) ends the run early at the next iteration
        boundaries; state stays checkpointed and resumable.
        """
        if not self.watched:
            raise ValueError("no environments watched")
        if duration_s <= 0:
            return self.incidents()
        scheduler = Scheduler(pool=self._pool())
        return scheduler.run(
            self.run_async(
                duration_s, scheduler=scheduler, on_tick=on_tick, on_event=on_event
            )
        )

    async def run_async(
        self,
        duration_s: float,
        *,
        scheduler: Scheduler,
        on_tick: Callable[[list[Incident], float], None] | None = None,
        on_event: Callable[[FleetEvent], None] | None = None,
    ) -> list[Incident]:
        """Coroutine form of :meth:`run` for callers that own the loop.

        ``repro serve`` runs many tenants' supervisors as sibling tasks on
        one shared :class:`Scheduler`; each calls ``run_async`` with that
        scheduler instead of :meth:`run` (which creates, and blocks, its own
        loop).  Semantics are identical — same events, same checkpoints,
        same byte-for-byte resume guarantee.
        """
        if not self.watched:
            raise ValueError("no environments watched")
        if duration_s <= 0:
            return self.incidents()
        fleet = list(self.watched.values())
        target_s = self.advanced_s + duration_s
        started_s = self.advanced_s
        self._stop_requested.clear()
        self._attach_obs()
        await self._run_async(scheduler, fleet, target_s, started_s, on_tick, on_event)
        return self.incidents()

    def stop(self) -> None:
        """Request a graceful early stop of :meth:`run` (thread-safe).

        Environment tasks finish their current iteration (including an
        in-flight diagnosis), a final checkpoint is flushed, and ``run``
        returns.  The supervisor remains consistent and resumable."""
        self._stop_requested.set()

    async def _run_async(
        self,
        scheduler: Scheduler,
        fleet: list[WatchedEnvironment],
        target_s: float,
        started_s: float,
        on_tick,
        on_event,
    ) -> None:
        advance_gate = asyncio.Semaphore(self._workers(len(fleet)))
        diagnosis_gate = (
            asyncio.Semaphore(self.max_inflight_diagnoses)
            if self.max_inflight_diagnoses is not None
            else None
        )
        if self.state_dir is not None:
            # Every checkpoint must cover the whole fleet, including members
            # that have not completed an iteration yet this run.
            for watched in fleet:
                self._env_snapshots[watched.name] = self._snapshot_env(watched)
        flusher = (
            scheduler.spawn(
                self._flush_loop(scheduler, on_event), name="checkpoint-flusher"
            )
            if self.state_dir is not None
            else None
        )
        try:
            tasks = [
                scheduler.spawn(
                    self._drive(
                        scheduler,
                        watched,
                        target_s,
                        started_s,
                        advance_gate,
                        diagnosis_gate,
                        on_tick,
                        on_event,
                    ),
                    name=f"drive-{watched.name}",
                )
                for watched in fleet
            ]
            # A failing environment must not leave siblings advancing on
            # pool threads while we snapshot below: flag a stop so every
            # task winds down at its next iteration boundary, then await
            # them all — the fleet is guaranteed quiescent afterwards.
            failures: list[BaseException] = []
            for task in asyncio.as_completed(tasks):
                try:
                    await task
                except Exception as exc:  # noqa: BLE001 — re-raised below
                    self._stop_requested.set()
                    failures.append(exc)
            if failures:
                raise failures[0]
            self._final_correlation_sweep(fleet, on_event)
        finally:
            if flusher is not None:
                flusher.cancel()
                await asyncio.gather(flusher, return_exceptions=True)
            if self.state_dir is not None:
                # Final write persists the stored iteration-BOUNDARY
                # snapshots, never a fresh re-snapshot: after a failed or
                # cancelled advance an environment's live detector state is
                # mid-chunk (torn against its boundary clock), and resuming
                # from it would double-count the re-simulated samples.  The
                # boundary snapshots are consistent by construction.
                self._checkpoint_dirty = False
                self._write_checkpoint()
            # Quiesce the observability sidecar: one last metrics snapshot,
            # flush the span journal, and detach the process-wide sink so a
            # later run (or another supervisor) attaches its own.
            self._snapshot_obs()
            if self.obs_backend is not None:
                obs_trace.tracer().set_sink(None)
                self.obs_backend.flush()
        self._emit(
            on_event,
            {
                "type": "fleet_done",
                "advanced_s": self.advanced_s,
                "skew_s": self.clocks.skew,
                "incidents": len(self.incidents()),
                "stopped": self._stop_requested.is_set(),
            },
        )

    async def _drive(
        self,
        scheduler: Scheduler,
        watched: WatchedEnvironment,
        target_s: float,
        started_s: float,
        advance_gate: asyncio.Semaphore,
        diagnosis_gate: asyncio.Semaphore | None,
        on_tick,
        on_event,
    ) -> None:
        """One environment's supervision loop: its own clock, no barrier."""
        while (
            watched.advanced_s < target_s - 1e-9
            and not self._stop_requested.is_set()
        ):
            with span("iteration", env=watched.name, sim_t=watched.advanced_s):
                step = min(self.chunk_s, target_s - watched.advanced_s)
                if self.max_skew_s is not None:
                    # Skew gate: don't start a chunk that would put this
                    # member more than max_skew_s ahead of the fleet floor.
                    # Pure wall pacing — simulated histories are unaffected.
                    if (
                        watched.advanced_s + step - self.advanced_s
                        > self.max_skew_s + 1e-9
                    ):
                        with span("wait", phase="skew-gate"):
                            while (
                                not self._stop_requested.is_set()
                                and watched.advanced_s + step - self.advanced_s
                                > self.max_skew_s + 1e-9
                            ):
                                await asyncio.sleep(0.002)
                    if self._stop_requested.is_set():
                        break
                with span("wait", phase="advance-slot"):
                    await advance_gate.acquire()
                try:
                    with span("advance", chunk_s=step):
                        detections = await scheduler.call(watched.advance, step)
                finally:
                    advance_gate.release()
                watched.advanced_s += step
                with span("detect", detections=len(detections)):
                    opened, recovered = self._fold_detections(watched, detections)
                    for incident in opened:
                        self._emit(
                            on_event,
                            {
                                "type": "incident_opened",
                                "env": watched.name,
                                "incident_id": incident.incident_id,
                                "severity": incident.severity.value,
                                "opened_at": incident.opened_at,
                                **(
                                    {"escalated_from": incident.escalated_from}
                                    if incident.escalated_from
                                    else {}
                                ),
                            },
                        )
                    for incident in recovered:
                        self._emit(
                            on_event,
                            {
                                "type": "incident_resolved",
                                "env": watched.name,
                                "incident_id": incident.incident_id,
                                "severity": incident.severity.value,
                                "top_cause": incident.top_cause_id,
                                "resolution": "recovered",
                                "resolved_at": incident.resolved_at,
                                "clock": watched.env.clock,
                            },
                        )
                    resolved: list[Incident] = list(recovered)
                    resolved.extend(
                        self._apply_fleet_short_circuit(watched, on_event)
                    )
                    due = self._begin_diagnosis_wave(watched)
                if due is not None:
                    incidents, request = due
                    with span("diagnose", incidents=len(incidents)):
                        self._emit(
                            on_event,
                            {
                                "type": "diagnosis_started",
                                "env": watched.name,
                                "incident_ids": [
                                    i.incident_id for i in incidents
                                ],
                                "clock": watched.env.clock,
                            },
                        )
                        report = await self._diagnose_async(
                            scheduler, request, diagnosis_gate
                        )
                        wave_resolved = self._resolve_wave(
                            watched, incidents, report
                        )
                        resolved.extend(wave_resolved)
                        for incident in wave_resolved:
                            self._emit(
                                on_event,
                                {
                                    "type": "incident_resolved",
                                    "env": watched.name,
                                    "incident_id": incident.incident_id,
                                    "severity": incident.severity.value,
                                    "top_cause": incident.top_cause_id,
                                    "resolved_at": incident.resolved_at,
                                    "clock": watched.env.clock,
                                },
                            )
                self.ticks += 1
                # Progress feeds the correlator last (after this iteration's
                # opens and resolves are buffered) and before the snapshot
                # stash, so the engine's watermark state is never behind a
                # checkpointed environment snapshot.  Any drill-down this
                # surfaces is bridged onto the worker pool: the cross-bundle
                # analysis (and the sibling advance locks it takes) must not
                # stall the coordination loop the whole fleet shares.
                # Re-attaching after a kill is safe (report journalling is
                # idempotent), so the snapshot-ordering invariant is
                # unaffected by awaiting here.
                with span("correlate"):
                    ready = self._correlate(
                        {
                            "type": "advanced",
                            "env": watched.name,
                            "advanced_s": watched.advanced_s,
                        }
                    )
                    for group in ready:
                        await scheduler.call(self._on_fleet_incident, group)
                if self.state_dir is not None:
                    with span("snapshot"):
                        self._env_snapshots[watched.name] = self._snapshot_env(
                            watched
                        )
                        self._checkpoint_dirty = True
                fleet_floor = self.advanced_s  # one O(fleet) scan/iteration
                with span("emit"):
                    self._emit(
                        on_event,
                        {
                            "type": "advanced",
                            "env": watched.name,
                            "clock": watched.env.clock,
                            "advanced_s": watched.advanced_s,
                            "fleet_advanced_s": fleet_floor,
                            "detections": len(detections),
                            "resolved": len(resolved),
                        },
                    )
                    if on_tick is not None:
                        on_tick(resolved, fleet_floor - started_s)
                obs_metrics.inc("supervisor.iterations")
                if resolved:
                    obs_metrics.inc("incidents.resolved", len(resolved))
            # Yield even on quiet iterations so a large fleet interleaves
            # fairly instead of one member monopolising the loop.
            await asyncio.sleep(0)
        self._emit(
            on_event,
            {"type": "env_done", "env": watched.name, "clock": watched.env.clock},
        )

    def _submit_diagnosis(self, request, *, pool: WorkerPool | None = None):
        """Submit one diagnosis request; local or remote, returns a Future.

        A :class:`RemoteDiagnosisRequest` routes into the environment's
        sticky worker process (no bundle crosses the boundary); a plain
        :class:`DiagnosisRequest` runs the pipeline on the given pool (the
        thread front of a process pool is fine — pipelines release the GIL
        on store scans and this path only carries local environments).
        """
        if isinstance(request, RemoteDiagnosisRequest):
            return request.submit()
        return self.pipeline.submit_many([request], pool=pool or self._pool())[0]

    async def _diagnose_async(
        self,
        scheduler: Scheduler,
        request: DiagnosisRequest,
        diagnosis_gate: asyncio.Semaphore | None,
    ):
        """Submit one diagnosis to the runtime; await only this env's report."""
        async with diagnosis_gate if diagnosis_gate is not None else nullcontext():
            obs_metrics.add_gauge("diagnoses.in_flight", 1)
            try:
                future = self._submit_diagnosis(request, pool=scheduler.pool)
                return await asyncio.wrap_future(future)
            finally:
                obs_metrics.add_gauge("diagnoses.in_flight", -1)

    def _emit(self, on_event, event: FleetEvent) -> None:
        """Deliver one fleet event: durable journal first, then the callback.

        With a state dir every event is journalled through the fleet event
        log (keyspace ``fleet_events``), so external consumers can tail the
        state dir without living in-process."""
        if self.event_log is not None:
            self.event_log.append(event)
        if on_event is not None:
            on_event(event)

    # -- observability sidecar -------------------------------------------
    def _attach_obs(self) -> None:
        """Point the process-wide tracer at this run's sidecar backend."""
        if self.obs_backend is not None:
            obs_trace.tracer().set_sink(self.obs_backend)

    def _snapshot_obs(self) -> None:
        """Persist one metrics snapshot (pool gauges refreshed first).

        Called on the flusher's wall cadence and once at quiesce — never
        from the per-iteration hot path.  No-op without a sidecar backend
        or with observability off.
        """
        if self.obs_backend is None or not obs_clock.is_enabled():
            return
        pool = self._pool()
        # Process-backed pools buffer worker-side spans and metric dumps;
        # pull them home before the snapshot so the sidecar sees one
        # coherent fleet (worker.<pid>.* plus workers.* aggregates).
        collect = getattr(pool, "collect_obs", None)
        if collect is not None:
            try:
                collect()
            except Exception:
                pass  # observability must never fail a snapshot
        stats = pool.stats()
        obs_metrics.set_gauge("pool.queued", stats["queued"])
        obs_metrics.set_gauge("pool.active", stats["active"])
        obs_metrics.set_gauge("pool.utilisation", stats["utilisation"])
        # Process-backed pools also expose per-worker routing gauges (pid,
        # sticky affinity keys, tasks routed, handoff bytes) — same registry,
        # same snapshot cadence, so the obs overhead gate still covers them.
        for row in stats.get("workers", ()):
            prefix = f"pool.worker{row['worker']}"
            obs_metrics.set_gauge(f"{prefix}.pid", float(row["pid"] or 0))
            obs_metrics.set_gauge(f"{prefix}.affinity_keys", row["affinity_keys"])
            obs_metrics.set_gauge(f"{prefix}.tasks_routed", row["tasks_routed"])
            obs_metrics.set_gauge(f"{prefix}.handoff_bytes", row["handoff_bytes"])
        obs_metrics.registry().snapshot_to(self.obs_backend, self.advanced_s)
        self.obs_backend.flush()

    # -- persistence -----------------------------------------------------
    def _snapshot_env(self, watched: WatchedEnvironment) -> dict:
        """Freeze one environment's resumable state (call at a quiesce
        point: between that environment's iterations)."""
        return {
            "query_name": watched.query_name,
            "clock": watched.env.clock,
            "advanced_s": watched.advanced_s,
            "bank": watched.bank.state_dict(),
            "run_detector": watched.run_detector.state_dict(),
            "manager": watched.manager.state_dict(),
        }

    def _write_checkpoint(self) -> None:
        """Persist the latest snapshots (atomic tmp + rename).

        The incident journal is flushed first, so a kill at any point leaves
        a consistent pair: a checkpoint as of each environment's last
        snapshotted iteration plus a journal holding at least those
        transitions (duplicates from the resumed re-simulation fold
        idempotently).
        """
        if self.state_dir is None:
            return
        with self._checkpoint_write_lock:
            self._write_checkpoint_locked()

    def _write_checkpoint_locked(self) -> None:
        snapshots = dict(self._env_snapshots)
        clocks = {name: snap["advanced_s"] for name, snap in snapshots.items()}
        state = {
            "version": 2,
            "meta": self.checkpoint_meta,
            "ticks": self.ticks,
            "chunk_s": self.chunk_s,
            "advanced_s": min(clocks.values(), default=0.0),
            "clocks": clocks,
            "environments": snapshots,
        }
        if self.correlator is not None:
            # Captured AFTER the environment snapshots: the engine must never
            # be behind them (events a resumed environment re-emits fold
            # idempotently; events the engine never saw would be lost).
            state["correlator"] = self.correlator.state_dict()
        if self.incident_store is not None:
            self.incident_store.flush()
        if self.event_log is not None:
            self.event_log.flush()
        if self.correlator is not None and self.correlator.store is not None:
            self.correlator.store.flush()
        atomic_write_json(self.state_dir / CHECKPOINT_FILE, state)

    async def _flush_loop(self, scheduler: Scheduler, on_event) -> None:
        """The dirty-flag batched checkpoint flusher.

        Wakes every ``checkpoint_interval_s`` wall seconds; writes only when
        an iteration marked the state dirty, so the hot advance path never
        pays for serialisation or I/O.  The write itself (serialising every
        snapshot + the atomic file replace) is bridged onto the worker pool
        — the coordination loop keeps dispatching environments while the
        checkpoint lands.  Snapshots are safe to serialise off-thread:
        iteration boundaries replace a member's entry wholesale and never
        mutate a stored snapshot.  A transient write failure (disk full,
        EACCES on the tmp file) must not kill periodic checkpointing for
        the rest of a long watch: the state is re-marked dirty and the
        write retries next interval, with the error surfaced on the event
        stream.  No write on cancellation: the run's quiesce checkpoint
        immediately follows."""
        while True:
            await asyncio.sleep(self.checkpoint_interval_s)
            if self._checkpoint_dirty:
                self._checkpoint_dirty = False
                try:
                    with span("checkpoint", sim_t=self.advanced_s):
                        await scheduler.call(self._write_checkpoint)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — retried next wake
                    self._checkpoint_dirty = True
                    self._emit(
                        on_event,
                        {"type": "checkpoint_error", "error": str(exc)},
                    )
                else:
                    self._emit(
                        on_event,
                        {"type": "checkpoint", "advanced_s": self.advanced_s},
                    )
            # Periodic metrics snapshot into the sidecar, on the flusher's
            # wall cadence (not per iteration — the hot loop never pays).
            await scheduler.call(self._snapshot_obs)

    def checkpoint(self) -> None:
        """Snapshot every environment now and write the checkpoint.

        Safe whenever no environment is mid-advance: the barriered
        :meth:`tick` calls it after each tick (PR-3 semantics preserved);
        the barrier-free path batches writes through the flusher instead and
        calls this once at quiesce.  No-op without a state dir.
        """
        if self.state_dir is None:
            return
        with span("checkpoint", sim_t=self.advanced_s):
            for watched in self.watched.values():
                self._env_snapshots[watched.name] = self._snapshot_env(watched)
            self._checkpoint_dirty = False
            self._write_checkpoint()
        self._snapshot_obs()

    def has_checkpoint(self) -> bool:
        return (
            self.state_dir is not None
            and (self.state_dir / CHECKPOINT_FILE).exists()
        )

    def resume(self) -> float:
        """Resume from the state dir's checkpoint; returns simulated seconds
        the whole fleet is guaranteed to have covered.

        Call after registering the *same* fleet (names, scenarios, seeds)
        that produced the checkpoint.  Environments are deterministic, so
        they are rebuilt by fast-forwarding the simulation — each to *its
        own* checkpointed clock (version-2 checkpoints carry a per-
        environment clock vector; a version-1 checkpoint's single duration
        is treated as a uniform vector).  Detectors stay attached during the
        fast-forward (run labelling and baselines evolve exactly as in the
        uninterrupted run) but the detections drained along the way are
        discarded: the checkpointed manager state already accounts for them.
        Detector and manager state are then restored, after which
        :meth:`tick` / :meth:`run` continue as if the process never died.
        """
        if not self.has_checkpoint():
            raise FileNotFoundError(f"no {CHECKPOINT_FILE} under {self.state_dir}")
        if self.ticks:
            raise ValueError("resume() must run before any tick")
        state = json.loads((self.state_dir / CHECKPOINT_FILE).read_text())
        saved_meta = state.get("meta")
        if (
            self.checkpoint_meta is not None
            and saved_meta is not None
            and saved_meta != self.checkpoint_meta
        ):
            raise ValueError(
                "checkpoint was produced by a different run configuration: "
                f"checkpoint {saved_meta!r} vs current {self.checkpoint_meta!r}"
            )
        saved = state["environments"]
        missing = sorted(set(saved) - set(self.watched))
        extra = sorted(set(self.watched) - set(saved))
        if missing or extra:
            raise ValueError(
                "watched fleet does not match the checkpoint "
                f"(missing: {missing or '-'}, unexpected: {extra or '-'})"
            )
        for name, env_state in saved.items():
            if self.watched[name].query_name != env_state["query_name"]:
                raise ValueError(
                    f"environment {name!r} watches {self.watched[name].query_name!r}"
                    f" but the checkpoint recorded {env_state['query_name']!r}"
                )

        # v1 checkpoints froze the fleet at one barrier; v2 carries the
        # per-environment clock vector an overlapped run produces.
        uniform = state["advanced_s"]
        clocks = {
            name: env_state.get("advanced_s", uniform)
            for name, env_state in saved.items()
        }
        fleet = list(self.watched.values())
        workers = self._workers(len(fleet))

        def fast_forward(watched: WatchedEnvironment) -> None:
            cover = clocks[watched.name]
            if cover > 0:
                watched.advance(cover)  # drains (discards) tap detections

        if workers > 1 and len(fleet) > 1:
            self._pool().map_bounded(fast_forward, fleet, limit=workers)
        else:
            for watched in fleet:
                fast_forward(watched)
        for name, env_state in saved.items():
            watched = self.watched[name]
            watched.bank.load_state(env_state["bank"])
            watched.run_detector.load_state(env_state["run_detector"])
            watched.manager.load_state(env_state["manager"])
            watched.advanced_s = clocks[name]
        if self.correlator is not None and state.get("correlator") is not None:
            self.correlator.load_state(state["correlator"])
        self.ticks = state["ticks"]
        return self.advanced_s

    # -- reporting -------------------------------------------------------
    def incidents(self) -> list[Incident]:
        out: list[Incident] = []
        for watched in self.watched.values():
            out.extend(watched.manager.incidents)
        return sorted(out, key=lambda i: (i.opened_at, i.incident_id))

    def status_rows(self) -> list[dict]:
        rows = [w.status() for w in self.watched.values()]
        if self.correlator is not None:
            for row in rows:
                row["group"] = self.correlator.group_for_env(row["env"])
        return rows

    def fleet_incident_rows(self) -> list[dict]:
        """Fleet-incident rollup tickets (empty without a correlator)."""
        if self.correlator is None:
            return []
        return self.correlator.to_dict()

    def to_dict(self) -> dict:
        """JSON-friendly fleet state (``repro watch --json``)."""
        out = {
            "ticks": self.ticks,
            "chunk_s": self.chunk_s,
            "advanced_s": self.advanced_s,
            "clocks": self.clocks.to_dict(),
            "skew_s": self.clocks.skew,
            "fleet": self.status_rows(),
            "incidents": [i.to_dict() for i in self.incidents()],
        }
        if self.correlator is not None:
            out["fleet_incidents"] = self.fleet_incident_rows()
        return out

    def render_table(self) -> str:
        """The live fleet table ``repro watch`` prints each refresh.

        With a correlator, each member row carries the id of the fleet
        incident it was grouped into, and a rollup section lists one row per
        fleet incident (members, confidence, state, top shared cause)."""
        grouped = self.correlator is not None
        group_col = f" {'group':<18}" if grouped else ""
        header = (
            f"{'env':<32} {'t(h)':>5} {'runs':>4} {'inc':>3} {'open':>4} "
            f"{'state':<11} {'sev':<8}{group_col} top cause"
        )
        lines = [header, "-" * len(header)]
        for row in self.status_rows():
            verified = (
                ""
                if row["verified"] is None
                else ("  [=truth]" if row["verified"] else "  [MISMATCH]")
            )
            group = f" {row.get('group') or '-':<18}" if grouped else ""
            lines.append(
                f"{row['env']:<32} {row['clock'] / 3600.0:>5.1f} {row['runs']:>4} "
                f"{row['incidents']:>3} {row['open']:>4} {row['state']:<11} "
                f"{row['severity']:<8}{group} {row['top_cause'] or '-'}{verified}"
            )
        rollup = self.fleet_incident_rows()
        if rollup:
            lines.append("")
            lines.append(
                f"{'fleet incident':<24} {'component':<12} {'members':>7} "
                f"{'conf':>5} {'state':<9} top cause"
            )
            lines.append("-" * len(lines[-1]))
            from ..correlate.engine import ticket_top_cause

            for ticket in rollup:
                top = ticket_top_cause(ticket) or "-"
                lines.append(
                    f"{ticket['fleet_id']:<24} {ticket['component_id']:<12} "
                    f"{len(ticket['members']):>7} {ticket['confidence']:>5.2f} "
                    f"{ticket['state']:<9} {top}"
                )
        return "\n".join(lines)
