"""Fleet supervisor: watch many environments, auto-diagnose incidents.

This is the closed loop the offline workflow lacks.  A
:class:`FleetSupervisor` owns a set of watched environments and advances the
whole fleet in *chunks* of simulated time (a thread pool advances
environments concurrently, the same fan-out semantics as
``DiagnosisPipeline.diagnose_many``).  Each chunk:

1. **advance** — every environment simulates ``chunk_s`` seconds; the
   collector's streaming tap feeds every raw metric append and finished
   query run to the environment's detectors as it happens (no polling);
2. **detect** — detections are folded into incidents with dedup + cooldown
   (:mod:`repro.stream.incidents`); the response-time SLO detector has
   already auto-marked runs, replacing the administrator's marking step;
3. **diagnose** — every open incident whose environment has a diagnosable
   query gets a ``DiagnosisBundle`` snapshot and a full pipeline run
   (batched across the fleet via ``diagnose_many``); the ranked report is
   attached to the incident, which resolves.

No human is in the loop: faults open incidents, incidents carry ranked root
causes, and ``repro watch`` renders the fleet table live.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..core.evaluation import evaluate_report
from ..core.pipeline import DiagnosisPipeline, DiagnosisRequest, default_pipeline
from ..lab.environment import Environment
from ..lab.scenarios import Scenario, ScenarioBundle, ScenarioInfo
from ..storage.backend import atomic_write_json
from .detectors import (
    Detection,
    DetectorBank,
    ResponseTimeSloDetector,
    default_detector_factory,
)
from .incidents import Incident, IncidentManager, IncidentState, IncidentStore

__all__ = ["WatchedEnvironment", "FleetSupervisor"]

#: File name of the atomic resume checkpoint inside a state dir.
CHECKPOINT_FILE = "checkpoint.json"


@dataclass
class WatchedEnvironment:
    """One environment under supervision: detectors + incident bookkeeping."""

    name: str
    env: Environment
    query_name: str
    bank: DetectorBank
    run_detector: ResponseTimeSloDetector
    manager: IncidentManager
    info: ScenarioInfo | None = None
    #: Detections accumulated by the taps during the current chunk; drained
    #: by the supervisor after the advance phase (taps run on the single
    #: thread advancing this environment, so no further locking is needed).
    _pending: list[Detection] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.env.collector.add_metric_tap(self._on_metric)
        self.env.collector.add_run_tap(self._on_run)

    # -- tap callbacks ---------------------------------------------------
    def _on_metric(self, time: float, component_id: str, metric: str, value: float) -> None:
        detection = self.bank.observe(time, component_id, metric, value)
        if detection is not None:
            self._pending.append(detection)

    def _on_run(self, run) -> None:
        detection = self.run_detector.observe_run(run)
        if detection is not None:
            self._pending.append(detection)

    # -- chunk lifecycle -------------------------------------------------
    def advance(self, chunk_s: float) -> list[Detection]:
        """Advance the simulation one chunk; drain the tap detections."""
        self.env.advance(chunk_s)
        drained, self._pending = self._pending, []
        return drained

    def diagnosable(self) -> bool:
        """True once the watched query has runs labelled on both sides."""
        runs = self.env.stores.runs
        return bool(
            runs.satisfactory_runs(self.query_name)
            and runs.unsatisfactory_runs(self.query_name)
        )

    # -- reporting -------------------------------------------------------
    def status(self) -> dict:
        """One fleet-table row.

        When scenario ground truth is known, the latest attached report is
        graded through :func:`repro.core.evaluation.evaluate_report` — the
        same rules as the offline sweep.  ``verified`` means the top-ranked
        cause is an injected one; ``identified`` is the sweep's stricter
        verdict (every injected cause also at high confidence).
        """
        incidents = self.manager.incidents
        last = incidents[-1] if incidents else None
        top = last.top_cause_id if last is not None else None
        ground_truth = self.info.ground_truth if self.info is not None else ()
        verified = identified = None
        if last is not None and last.report is not None and self.info is not None:
            evaluation = evaluate_report(
                ScenarioBundle(
                    info=self.info,
                    bundle=self.env.bundle(),
                    query_name=self.query_name,
                ),
                last.report,
            )
            verified = evaluation.top_cause in evaluation.ground_truth
            identified = evaluation.identified
        return {
            "env": self.name,
            "query": self.query_name,
            "clock": self.env.clock,
            "runs": len(self.env.stores.runs.runs(self.query_name)),
            "detections": sum(len(i.detections) for i in incidents)
            + self.manager.suppressed,
            "incidents": len(incidents),
            "open": len(self.manager.open_incidents())
            + len(self.manager.diagnosing_incidents()),
            "suppressed": self.manager.suppressed,
            "state": last.state.value if last is not None else "healthy",
            "severity": last.severity.value if last is not None else "-",
            "top_cause": top,
            "ground_truth": ground_truth,
            "verified": verified,
            "identified": identified,
        }


class FleetSupervisor:
    """Advance a fleet of environments and close the detect→diagnose loop."""

    def __init__(
        self,
        pipeline: DiagnosisPipeline | None = None,
        *,
        chunk_s: float = 1800.0,
        max_workers: int | None = None,
        cooldown_s: float = 7200.0,
        slo_factor: float = 1.3,
        baseline_runs: int = 4,
        state_dir: str | os.PathLike | None = None,
        checkpoint_meta: dict | None = None,
    ) -> None:
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        self.pipeline = pipeline or default_pipeline()
        self.chunk_s = chunk_s
        self.max_workers = max_workers
        self.cooldown_s = cooldown_s
        self.slo_factor = slo_factor
        self.baseline_runs = baseline_runs
        self.watched: dict[str, WatchedEnvironment] = {}
        self.ticks = 0
        #: Cumulative simulated seconds the fleet has been advanced.
        self.advanced_s = 0.0
        self.state_dir = Path(state_dir) if state_dir is not None else None
        #: Caller-supplied run parameters (scenario names, hours, seed...)
        #: stamped into every checkpoint; resume() refuses a checkpoint whose
        #: meta differs, since the rebuilt fleet would not be the same
        #: deterministic simulation the checkpoint froze.
        self.checkpoint_meta = checkpoint_meta
        #: Durable incident journal (None without a state dir); managers of
        #: watched environments journal their transitions through it.
        self.incident_store: IncidentStore | None = (
            IncidentStore.open(self.state_dir) if self.state_dir is not None else None
        )

    # -- registration ----------------------------------------------------
    def watch(
        self,
        name: str,
        env: Environment,
        query_name: str,
        *,
        detector_factory: Callable | None = None,
        info: ScenarioInfo | None = None,
    ) -> WatchedEnvironment:
        """Put one environment under supervision."""
        if name in self.watched:
            raise ValueError(f"environment {name!r} already watched")
        watched = WatchedEnvironment(
            name=name,
            env=env,
            query_name=query_name,
            bank=DetectorBank(factory=detector_factory or default_detector_factory()),
            run_detector=ResponseTimeSloDetector(
                factor=self.slo_factor,
                baseline_runs=self.baseline_runs,
                query_name=query_name,
            ),
            manager=IncidentManager(
                name, cooldown_s=self.cooldown_s, store=self.incident_store
            ),
            info=info,
        )
        self.watched[name] = watched
        return watched

    def watch_scenario(self, scenario: Scenario, name: str | None = None) -> WatchedEnvironment:
        """Build a scenario's environment and watch it (ground truth kept
        aside for verification only — detectors never see it)."""
        return self.watch(
            name or scenario.info.name,
            scenario.build(),
            scenario.query_name,
            info=scenario.info,
        )

    # -- the loop --------------------------------------------------------
    def tick(self, chunk_s: float | None = None) -> list[Incident]:
        """Advance the fleet one chunk; returns incidents resolved this tick.

        ``chunk_s`` overrides the configured chunk for this tick only (used
        to clamp the final chunk of a bounded run).
        """
        if not self.watched:
            raise ValueError("no environments watched")
        chunk = chunk_s if chunk_s is not None else self.chunk_s
        fleet = list(self.watched.values())
        workers = self.max_workers or min(8, len(fleet))

        # Phase 1 — advance all environments concurrently.  Each environment
        # is touched by exactly one thread; detections buffer per-env.
        if workers > 1 and len(fleet) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batches = list(pool.map(lambda w: w.advance(chunk), fleet))
        else:
            batches = [w.advance(chunk) for w in fleet]

        # Phase 2 — fold detections into incidents (dedup + cooldown).
        for watched, detections in zip(fleet, batches):
            for detection in detections:
                watched.manager.observe(detection)

        # Phase 3 — auto-diagnose: an environment whose watched query now
        # has both labels gets ONE bundle snapshot and ONE pipeline run per
        # tick; every incident it opened shares that report (several
        # detection targets firing together would otherwise pay for the
        # six-module pipeline once each).  The wave is batched fleet-wide.
        wave: list[tuple[WatchedEnvironment, list[Incident], DiagnosisRequest]] = []
        for watched in fleet:
            open_incidents = watched.manager.open_incidents()
            if not open_incidents:
                continue
            if not watched.diagnosable():
                continue  # stays OPEN until labelled runs exist on both sides
            for incident in open_incidents:
                watched.manager.begin_diagnosis(incident, watched.env.clock)
            wave.append(
                (
                    watched,
                    open_incidents,
                    DiagnosisRequest(watched.env.bundle(), watched.query_name),
                )
            )
        resolved: list[Incident] = []
        if wave:
            reports = self.pipeline.diagnose_many(
                [req for _, _, req in wave], max_workers=workers
            )
            for (watched, incidents, _), report in zip(wave, reports):
                for incident in incidents:
                    watched.manager.resolve(incident, watched.env.clock, report)
                    resolved.append(incident)
        self.ticks += 1
        self.advanced_s += chunk
        self.checkpoint()
        return resolved

    def run(
        self,
        duration_s: float,
        on_tick: Callable[[list[Incident], float], None] | None = None,
    ) -> list[Incident]:
        """Advance the whole fleet for exactly ``duration_s``; all incidents.

        The final chunk is clamped, so a duration that is not a multiple of
        ``chunk_s`` does not overshoot the scenario's designed end (the
        environment clock can exceed the target by at most one tick).
        ``on_tick(resolved, elapsed)`` is invoked after every chunk — the
        hook ``repro watch`` renders its live table from.
        """
        elapsed = 0.0
        while elapsed < duration_s:
            step = min(self.chunk_s, duration_s - elapsed)
            resolved = self.tick(step)
            elapsed += step
            if on_tick is not None:
                on_tick(resolved, elapsed)
        return self.incidents()

    # -- persistence -----------------------------------------------------
    def checkpoint(self) -> None:
        """Freeze resumable state into ``state_dir`` (no-op without one).

        Written atomically (tmp + rename) after every tick, alongside the
        incident journal the managers already appended to, so a kill at any
        point leaves a consistent pair: a checkpoint as of the last complete
        tick plus a journal holding at least those transitions.
        """
        if self.state_dir is None:
            return
        state = {
            "version": 1,
            "meta": self.checkpoint_meta,
            "ticks": self.ticks,
            "chunk_s": self.chunk_s,
            "advanced_s": self.advanced_s,
            "environments": {
                name: {
                    "query_name": w.query_name,
                    "clock": w.env.clock,
                    "bank": w.bank.state_dict(),
                    "run_detector": w.run_detector.state_dict(),
                    "manager": w.manager.state_dict(),
                }
                for name, w in self.watched.items()
            },
        }
        if self.incident_store is not None:
            self.incident_store.flush()
        atomic_write_json(self.state_dir / CHECKPOINT_FILE, state)

    def has_checkpoint(self) -> bool:
        return (
            self.state_dir is not None
            and (self.state_dir / CHECKPOINT_FILE).exists()
        )

    def resume(self) -> float:
        """Resume from the state dir's checkpoint; returns simulated seconds
        already covered.

        Call after registering the *same* fleet (names, scenarios, seeds)
        that produced the checkpoint.  Environments are deterministic, so
        they are rebuilt by fast-forwarding the simulation to the
        checkpointed duration — detectors stay attached (run labelling and
        baselines evolve exactly as in the uninterrupted run) but the
        detections drained during the fast-forward are discarded: the
        checkpointed manager state already accounts for them.  Detector and
        manager state are then restored from the checkpoint, after which
        :meth:`tick` / :meth:`run` continue as if the process never died.
        """
        if not self.has_checkpoint():
            raise FileNotFoundError(f"no {CHECKPOINT_FILE} under {self.state_dir}")
        if self.ticks:
            raise ValueError("resume() must run before any tick")
        state = json.loads((self.state_dir / CHECKPOINT_FILE).read_text())
        saved_meta = state.get("meta")
        if (
            self.checkpoint_meta is not None
            and saved_meta is not None
            and saved_meta != self.checkpoint_meta
        ):
            raise ValueError(
                "checkpoint was produced by a different run configuration: "
                f"checkpoint {saved_meta!r} vs current {self.checkpoint_meta!r}"
            )
        saved = state["environments"]
        missing = sorted(set(saved) - set(self.watched))
        extra = sorted(set(self.watched) - set(saved))
        if missing or extra:
            raise ValueError(
                "watched fleet does not match the checkpoint "
                f"(missing: {missing or '-'}, unexpected: {extra or '-'})"
            )
        for name, env_state in saved.items():
            if self.watched[name].query_name != env_state["query_name"]:
                raise ValueError(
                    f"environment {name!r} watches {self.watched[name].query_name!r}"
                    f" but the checkpoint recorded {env_state['query_name']!r}"
                )

        advanced = state["advanced_s"]
        fleet = list(self.watched.values())
        if advanced > 0:
            workers = self.max_workers or min(8, len(fleet))
            if workers > 1 and len(fleet) > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(lambda w: w.advance(advanced), fleet))
            else:
                for w in fleet:
                    w.advance(advanced)  # drains (discards) tap detections
        for name, env_state in saved.items():
            watched = self.watched[name]
            watched.bank.load_state(env_state["bank"])
            watched.run_detector.load_state(env_state["run_detector"])
            watched.manager.restore(env_state["manager"])
        self.ticks = state["ticks"]
        self.advanced_s = advanced
        return advanced

    # -- reporting -------------------------------------------------------
    def incidents(self) -> list[Incident]:
        out: list[Incident] = []
        for watched in self.watched.values():
            out.extend(watched.manager.incidents)
        return sorted(out, key=lambda i: (i.opened_at, i.incident_id))

    def status_rows(self) -> list[dict]:
        return [w.status() for w in self.watched.values()]

    def to_dict(self) -> dict:
        """JSON-friendly fleet state (``repro watch --json``)."""
        return {
            "ticks": self.ticks,
            "chunk_s": self.chunk_s,
            "advanced_s": self.advanced_s,
            "fleet": self.status_rows(),
            "incidents": [i.to_dict() for i in self.incidents()],
        }

    def render_table(self) -> str:
        """The live fleet table ``repro watch`` prints each refresh."""
        header = (
            f"{'env':<32} {'t(h)':>5} {'runs':>4} {'inc':>3} {'open':>4} "
            f"{'state':<11} {'sev':<8} top cause"
        )
        lines = [header, "-" * len(header)]
        for row in self.status_rows():
            verified = (
                ""
                if row["verified"] is None
                else ("  [=truth]" if row["verified"] else "  [MISMATCH]")
            )
            lines.append(
                f"{row['env']:<32} {row['clock'] / 3600.0:>5.1f} {row['runs']:>4} "
                f"{row['incidents']:>3} {row['open']:>4} {row['state']:<11} "
                f"{row['severity']:<8} {row['top_cause'] or '-'}{verified}"
            )
        return "\n".join(lines)
