"""Durable fleet event log: the ``run(on_event=...)`` stream, journalled.

PR 4 made the fleet supervisor emit a live event stream, but consuming it
meant living in-process as the ``on_event`` callback.  The
:class:`FleetEventLog` journals every event through the pluggable
:class:`~repro.storage.StorageBackend` contract (keyspace ``fleet_events``),
so external consumers — dashboards, the out-of-process correlation engine
(:meth:`repro.correlate.CorrelationEngine.consume_log`) — can *tail a state
dir* instead:

* each event is wrapped in one record: ``t`` (the event's simulated time),
  ``k`` (the environment it concerns, when it concerns one), ``seq`` (a
  monotone sequence number), ``event`` (the raw fleet event dict);
* append order is replay order (a backend guarantee), and ``seq`` survives
  reopen — a log opened on an existing state dir continues numbering where
  the previous process stopped;
* delivery across a kill/resume is **at least once**: a resumed supervisor
  deterministically re-emits the events of any iteration that ran after the
  last checkpoint, so the same logical event can appear twice with a fresh
  ``seq``.  Consumers that need exactly-once semantics de-duplicate on event
  content (the correlation engine keys on incident ids, which re-simulate
  identically).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator

from ..storage.keyspaces import FLEET_EVENTS

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["FleetEventLog"]

#: Event fields consulted (in order) for the record's simulated timestamp.
_TIME_FIELDS = ("clock", "opened_at", "advanced_s")


class FleetEventLog:
    """Append-only journal of fleet supervisor events over a backend."""

    KEYSPACE = FLEET_EVENTS

    def __init__(self, backend: "StorageBackend") -> None:
        self.backend = backend
        self._seq = -1
        self._last_t = 0.0
        #: The record wrapped by the most recent :meth:`append` — lets an
        #: ``on_event`` consumer on the same thread (the SSE broker) recover
        #: the exact journalled record, ``seq`` included, without a re-scan.
        self.last_record: dict | None = None
        if getattr(backend, "durable", False):
            for rec in backend.scan(self.KEYSPACE):
                self._seq = max(self._seq, rec.get("seq", -1))
                self._last_t = max(self._last_t, rec.get("t", 0.0))

    @classmethod
    def open(cls, state_dir: str | os.PathLike) -> "FleetEventLog":
        """Open (or create) the journal under ``state_dir/fleet_events``."""
        from pathlib import Path

        from ..storage.jsonl import JsonlBackend

        return cls(JsonlBackend(Path(state_dir) / cls.KEYSPACE))

    # -- writing ---------------------------------------------------------
    def append(self, event: dict) -> dict:
        """Journal one fleet event; returns the wrapped record."""
        t = self._last_t
        for name in _TIME_FIELDS:
            value = event.get(name)
            if isinstance(value, (int, float)):
                t = float(value)
                break
        self._last_t = max(self._last_t, t)
        self._seq += 1
        rec: dict = {"t": t, "seq": self._seq, "event": dict(event)}
        env = event.get("env")
        if env is not None:
            rec["k"] = env
        self.backend.append(self.KEYSPACE, rec)
        self.last_record = rec
        return rec

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    # -- reading ---------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the latest appended record (-1 when empty)."""
        return self._seq

    def tail(self, after_seq: int = -1) -> Iterator[dict]:
        """Records with ``seq > after_seq``, in append order.

        The polling surface for out-of-process consumers: remember the last
        ``seq`` you processed and pass it back on the next call.  When the
        backend supports it (:meth:`JsonlBackend.refresh`), each call first
        picks up records appended by *another* process since this log was
        opened — so a live tailer keeps seeing new events even while the
        writer is killed and resumed (at-least-once: a resumed writer may
        re-emit post-checkpoint events under fresh, still-monotone ``seq``).
        """
        refresh = getattr(self.backend, "refresh", None)
        if refresh is not None:
            refresh()
        for rec in self.backend.scan(self.KEYSPACE):
            if rec.get("seq", -1) > after_seq:
                yield rec

    def events(
        self, *, env: str | None = None, kind: str | None = None
    ) -> list[dict]:
        """Raw fleet events (unwrapped), filtered by environment / type."""
        return [
            rec["event"]
            for rec in self.backend.scan(self.KEYSPACE, key=env)
            if kind is None or rec["event"].get("type") == kind
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.backend.scan(self.KEYSPACE))
