"""Parent-side proxies for environments that live in procpool workers.

:class:`RemoteWatchedEnvironment` duck-types
:class:`~repro.stream.supervisor.WatchedEnvironment` so every supervisor code
path — the barriered tick, the barrier-free drive loop, checkpointing,
resume, fleet correlation — runs unchanged.  The split of responsibilities:

* **Worker process** (:mod:`repro.stream.worker`): the simulator and the
  per-sample streaming detectors — the CPU-bound 99%.  Pinned by sticky
  affinity (``affinity=<watch name>``) so state hydrates once and stays warm.
* **Parent process** (this module): the incident manager, correlator feeds,
  event log, and checkpoint snapshots — the sequential bookkeeping whose
  byte-for-byte determinism the resume guarantee rests on.

What crosses the boundary per iteration is the compact delta from
``advance_env``: detections (rebuilt via ``Detection.from_dict`` — lossless
for history purposes), the clock, run counts, and detector state dicts
(cached parent-side so checkpoint snapshots never block on a worker).
Diagnosis runs *in the worker* against the live bundle and comes back as
``report_to_dict`` output; :class:`RemoteReport` carries it into
``FleetSupervisor._resolve_wave``, which resolves via ``report_data`` —
exactly the path fleet short-circuits already use, hence identical bytes.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass

from ..lab.environment import DiagnosisBundle
from ..lab.scenarios import ScenarioInfo
from ..runtime.procpool import ProcessWorkerPool
from .detectors import (
    Detection,
    DetectorBank,
    ResponseTimeSloDetector,
    default_detector_factory,
)
from .incidents import IncidentManager

__all__ = ["RemoteWatchedEnvironment", "RemoteDiagnosisRequest", "RemoteReport"]

ADVANCE_TASK = "repro.stream.worker:advance_env"
DIAGNOSE_TASK = "repro.stream.worker:diagnose_env"
BUNDLE_TASK = "repro.stream.worker:bundle_env"
LOAD_TASK = "repro.stream.worker:load_detectors"


@dataclass
class RemoteReport:
    """A diagnosis produced in a worker: serialized report + grading."""

    report_data: dict
    evaluation: dict | None = None


class RemoteDiagnosisRequest:
    """A due diagnosis to run in the environment's own worker.

    Stands in for :class:`repro.core.pipeline.DiagnosisRequest` in the
    supervisor's wave plumbing; ``submit`` routes to the sticky worker (no
    bundle snapshot crosses the boundary — the worker diagnoses its live
    bundle) and resolves to a :class:`RemoteReport`.
    """

    def __init__(self, watched: "RemoteWatchedEnvironment") -> None:
        self.watched = watched

    def submit(self) -> "Future[RemoteReport]":
        inner = self.watched.pool.submit_task(
            DIAGNOSE_TASK, {"spec": self.watched.spec}, affinity=self.watched.name
        )
        outer: "Future[RemoteReport]" = Future()
        outer.set_running_or_notify_cancel()

        def _done(future: Future) -> None:
            try:
                out = future.result()
            except BaseException as exc:  # noqa: BLE001 — forwarded verbatim
                outer.set_exception(exc)
            else:
                outer.set_result(
                    RemoteReport(
                        report_data=out["report"], evaluation=out.get("evaluation")
                    )
                )

        inner.add_done_callback(_done)
        return outer


class _RemoteDetectorState:
    """``state_dict``/``load_state`` facade over detector state in a worker.

    Reads serve the parent-side cache (refreshed by every ``advance_env``
    delta, so checkpoint snapshots are always iteration-boundary consistent);
    ``load_state`` updates the cache *and* pushes both detector states to the
    worker — the resume path.
    """

    def __init__(self, owner: "RemoteWatchedEnvironment", initial: dict) -> None:
        self._owner = owner
        self._state = initial

    def state_dict(self) -> dict:
        return self._state

    def load_state(self, state: dict) -> None:
        self._state = state
        self._owner._push_detector_state()


class _RemoteEnv:
    """Just enough ``Environment`` surface for the supervisor.

    ``clock`` serves the cached worker clock; ``bundle()`` fetches the full
    bundle payload from the worker (fleet drill-down evidence).  There is
    deliberately no ``advance_lock``: the worker serialises all tasks for
    one environment on its single task queue, so a bundle export can never
    observe a torn mid-chunk simulation.
    """

    def __init__(self, owner: "RemoteWatchedEnvironment") -> None:
        self._owner = owner

    @property
    def clock(self) -> float:
        return self._owner._clock

    def bundle(self) -> DiagnosisBundle:
        return self._owner._fetch_bundle()


class RemoteWatchedEnvironment:
    """One supervised environment whose simulator lives in a procpool worker."""

    is_remote = True

    def __init__(
        self,
        name: str,
        spec: dict,
        query_name: str,
        manager: IncidentManager,
        pool: ProcessWorkerPool,
        info: ScenarioInfo | None = None,
    ) -> None:
        self.name = name
        self.query_name = query_name
        self.manager = manager
        self.info = info
        self.pool = pool
        self.spec = dict(spec, name=name, query_name=query_name)
        self.advanced_s = 0.0
        self.env = _RemoteEnv(self)
        self._clock = 0.0
        self._runs = 0
        self._diagnosable = False
        #: incident_id → {"verified", "identified"}: worker-side grading of
        #: the diagnosis each incident was resolved with (report_data has no
        #: live report object to grade parent-side).
        self._evaluations: dict[str, dict] = {}
        # Fresh local detectors supply the pre-first-iteration state dicts —
        # the checkpoint written before an environment's first advance must
        # match what thread mode snapshots for a just-built fleet.
        recovery = bool(self.spec.get("recovery", False))
        self.bank = _RemoteDetectorState(
            self,
            DetectorBank(
                factory=default_detector_factory(emit_recovery=recovery)
            ).state_dict(),
        )
        self.run_detector = _RemoteDetectorState(
            self,
            ResponseTimeSloDetector(
                factor=float(self.spec.get("slo_factor", 1.3)),
                baseline_runs=int(self.spec.get("baseline_runs", 4)),
                query_name=query_name,
                emit_recovery=recovery,
            ).state_dict(),
        )

    # -- chunk lifecycle -------------------------------------------------
    def advance(self, chunk_s: float) -> list[Detection]:
        """Advance in the worker; cache the delta; return the detections."""
        out = self.pool.submit_task(
            ADVANCE_TASK,
            {"spec": self.spec, "chunk_s": chunk_s},
            affinity=self.name,
        ).result()
        self._clock = out["clock"]
        self._runs = out["runs"]
        self._diagnosable = out["diagnosable"]
        self.bank._state = out["bank"]
        self.run_detector._state = out["run_detector"]
        return [Detection.from_dict(d) for d in out["detections"]]

    def diagnosable(self) -> bool:
        return self._diagnosable

    def diagnosis_request(self) -> RemoteDiagnosisRequest:
        return RemoteDiagnosisRequest(self)

    def record_evaluation(self, incident_id: str, evaluation: dict | None) -> None:
        if evaluation is not None:
            self._evaluations[incident_id] = evaluation

    # -- worker round-trips ----------------------------------------------
    def _push_detector_state(self) -> None:
        self.pool.submit_task(
            LOAD_TASK,
            {
                "spec": self.spec,
                "bank": self.bank._state,
                "run_detector": self.run_detector._state,
            },
            affinity=self.name,
        ).result()

    def _fetch_bundle(self) -> DiagnosisBundle:
        payload = self.pool.submit_task(
            BUNDLE_TASK, {"spec": self.spec}, affinity=self.name
        ).result()
        return DiagnosisBundle.from_payload(payload)

    # -- reporting -------------------------------------------------------
    def status(self) -> dict:
        """One fleet-table row; mirrors ``WatchedEnvironment.status``.

        ``verified``/``identified`` come from the worker-side grading cached
        when the incident resolved; incidents resolved without a worker
        diagnosis (fleet short-circuits, resumed history) report ``None`` —
        the same answer thread mode gives for a report-less incident.
        """
        incidents = self.manager.incidents
        last = incidents[-1] if incidents else None
        top = last.top_cause_id if last is not None else None
        ground_truth = self.info.ground_truth if self.info is not None else ()
        verified = identified = None
        if last is not None and self.info is not None:
            evaluation = self._evaluations.get(last.incident_id)
            if evaluation is not None:
                verified = evaluation.get("verified")
                identified = evaluation.get("identified")
        return {
            "env": self.name,
            "query": self.query_name,
            "clock": self._clock,
            "runs": self._runs,
            "detections": sum(len(i.detections) for i in incidents)
            + self.manager.suppressed,
            "incidents": len(incidents),
            "open": len(self.manager.open_incidents())
            + len(self.manager.diagnosing_incidents()),
            "suppressed": self.manager.suppressed,
            "state": last.state.value if last is not None else "healthy",
            "severity": last.severity.value if last is not None else "-",
            "top_cause": top,
            "ground_truth": ground_truth,
            "verified": verified,
            "identified": identified,
        }
