"""repro.stream — online anomaly detection and auto-triggered diagnosis.

The offline workflow waits for an administrator to mark runs unsatisfactory;
this subsystem closes the loop instead: O(1)-per-sample detectors watch the
monitoring stream through the collector tap, incidents open with dedup and
cooldown, and a :class:`FleetSupervisor` watches many environments at once,
snapshotting a ``DiagnosisBundle`` and running the diagnosis pipeline the
moment an incident opens.

Quickstart::

    from repro.lab.scenarios import scenario_flapping_san_misconfiguration
    from repro.stream import FleetSupervisor

    supervisor = FleetSupervisor()
    supervisor.watch_scenario(scenario_flapping_san_misconfiguration(hours=8.0))
    supervisor.run(8 * 3600.0)
    for incident in supervisor.incidents():
        print(incident.incident_id, incident.severity.value, incident.top_cause_id)
"""

from .detectors import (
    CusumDetector,
    Detection,
    Detector,
    DetectorBank,
    EwmaDriftDetector,
    ResponseTimeSloDetector,
    ThresholdSloDetector,
    default_detector_factory,
)
from .eventlog import FleetEventLog
from .incidents import Incident, IncidentManager, IncidentState, IncidentStore, Severity
from .remote import RemoteWatchedEnvironment
from .supervisor import FleetEvent, FleetSupervisor, WatchedEnvironment

__all__ = [
    "Detection",
    "Detector",
    "ThresholdSloDetector",
    "EwmaDriftDetector",
    "CusumDetector",
    "ResponseTimeSloDetector",
    "DetectorBank",
    "default_detector_factory",
    "Incident",
    "IncidentManager",
    "IncidentState",
    "IncidentStore",
    "Severity",
    "FleetEventLog",
    "FleetSupervisor",
    "FleetEvent",
    "WatchedEnvironment",
    "RemoteWatchedEnvironment",
]
