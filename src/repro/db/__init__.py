"""Database simulator substrate: catalog, TPC-H, plans, optimizer, executor."""

from .catalog import Catalog, CatalogError, Column, Index, Table, Tablespace, PAGE_SIZE
from .tpch import build_tpch_catalog, TPCH_BASE_ROWS, DEFAULT_LAYOUT
from .plans import (
    OpType,
    PlanDiff,
    PlanOperator,
    canonical_q2_plan,
    diff_plans,
    render_plan,
)
from .query import JoinEdge, Predicate, QuerySpec, simple_report_query, tpch_q2_spec
from .optimizer import CostModel, DbConfig, Optimizer
from .buffer import BufferModel
from .locks import LockContention, LockManager
from .executor import Executor, OperatorRuntime, QueryRun
from .metrics import (
    DATABASE_METRICS,
    METRIC_FAMILIES,
    NETWORK_METRICS,
    SERVER_METRICS,
    STORAGE_METRICS,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "Index",
    "Table",
    "Tablespace",
    "PAGE_SIZE",
    "build_tpch_catalog",
    "TPCH_BASE_ROWS",
    "DEFAULT_LAYOUT",
    "OpType",
    "PlanOperator",
    "PlanDiff",
    "canonical_q2_plan",
    "diff_plans",
    "render_plan",
    "QuerySpec",
    "Predicate",
    "JoinEdge",
    "tpch_q2_spec",
    "simple_report_query",
    "CostModel",
    "DbConfig",
    "Optimizer",
    "BufferModel",
    "LockManager",
    "LockContention",
    "Executor",
    "OperatorRuntime",
    "QueryRun",
    "DATABASE_METRICS",
    "SERVER_METRICS",
    "NETWORK_METRICS",
    "STORAGE_METRICS",
    "METRIC_FAMILIES",
]
