"""Declarative query specifications consumed by the optimizer.

The optimizer does not parse SQL; a :class:`QuerySpec` captures what the cost
model needs — the tables touched, per-table filter selectivities, the join
graph, and top-level shaping (order by / limit / aggregate).  This keeps the
"toy cost optimizer" genuinely cost-based (plans flip when statistics,
indexes or configuration change) without dragging in a SQL front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Predicate", "JoinEdge", "QuerySpec", "tpch_q2_spec", "simple_report_query"]


@dataclass(frozen=True)
class Predicate:
    """A filter on one table with its estimated selectivity."""

    table: str
    column: str
    selectivity: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join between two tables."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def touches(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> str:
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise ValueError(f"{table!r} not part of this join edge")

    def column_for(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ValueError(f"{table!r} not part of this join edge")


@dataclass
class QuerySpec:
    """A join query over base tables."""

    name: str
    tables: list[str]
    predicates: list[Predicate] = field(default_factory=list)
    joins: list[JoinEdge] = field(default_factory=list)
    order_by: bool = False
    limit: int | None = None
    aggregate: bool = False

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate table references are not supported")
        for pred in self.predicates:
            if pred.table not in self.tables:
                raise ValueError(f"predicate on unknown table {pred.table!r}")
        for join in self.joins:
            if join.left_table not in self.tables or join.right_table not in self.tables:
                raise ValueError("join edge references unknown table")

    def selectivity_of(self, table: str) -> float:
        """Combined filter selectivity for a table (independence assumption)."""
        result = 1.0
        for pred in self.predicates:
            if pred.table == table:
                result *= pred.selectivity
        return result

    def join_edges_between(self, left: set[str], right: set[str]) -> list[JoinEdge]:
        return [
            j
            for j in self.joins
            if (j.left_table in left and j.right_table in right)
            or (j.left_table in right and j.right_table in left)
        ]


def tpch_q2_spec() -> QuerySpec:
    """The flattened main block of TPC-H Q2 for optimizer experiments.

    (The canonical Figure-1 plan including the min-cost subquery is pinned in
    :func:`repro.db.plans.canonical_q2_plan`; this spec exists so Module PD
    scenarios can genuinely replan a Q2-shaped query.)
    """
    return QuerySpec(
        name="q2-main",
        tables=["part", "partsupp", "supplier", "nation", "region"],
        predicates=[
            Predicate("part", "p_size", 1.0 / 50.0, "p_size = 15"),
            Predicate("part", "p_type", 1.0 / 30.0, "p_type LIKE '%BRASS'"),
            Predicate("region", "r_name", 1.0 / 5.0, "r_name = 'EUROPE'"),
        ],
        joins=[
            JoinEdge("part", "p_partkey", "partsupp", "ps_partkey"),
            JoinEdge("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
        ],
        order_by=True,
        limit=100,
    )


def simple_report_query() -> QuerySpec:
    """A two-table reporting query whose plan flips when an index is dropped.

    Used by the Module-PD scenarios: with ``ix_partsupp_suppkey`` present the
    optimizer picks an index nested loop; dropping it (or inflating
    ``random_page_cost``) flips to a hash join over sequential scans.
    """
    return QuerySpec(
        name="supplier-parts-report",
        tables=["supplier", "partsupp"],
        predicates=[Predicate("supplier", "s_acctbal", 1.0 / 100.0, "s_acctbal > 9900")],
        joins=[JoinEdge("supplier", "s_suppkey", "partsupp", "ps_suppkey")],
        order_by=False,
        limit=None,
    )
