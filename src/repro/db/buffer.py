"""Buffer-cache hit model.

An analytical stand-in for the database buffer pool: small, hot tables (and
index pages probed in tight nested loops) are almost always cached, while
large sequential scans mostly miss.  The hit ratio feeds the executor's
physical-read counts, which in turn drive both the volume I/O load offered to
the SAN simulator and the ``Buffer Hits`` / ``Blocks Read`` metrics of
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import PAGE_SIZE, Table

__all__ = ["BufferModel"]


@dataclass
class BufferModel:
    """Hit-ratio model parameterised by the buffer pool size.

    ``hot_boost`` reflects repeated access (index probes in a loop revisit
    the same upper index levels and hot heap pages).
    """

    cache_mb: float = 96.0
    max_hit: float = 0.995
    min_hit: float = 0.02
    hot_boost: float = 3.0

    @property
    def cache_pages(self) -> float:
        return self.cache_mb * 1024.0 * 1024.0 / PAGE_SIZE

    def hit_ratio(self, table: Table, hot: bool = False) -> float:
        """Expected cache-hit fraction for reads against ``table``.

        ``hot`` marks access patterns with heavy page reuse (inner sides of
        nested loops): their effective footprint shrinks by ``hot_boost``.
        """
        pages = max(table.pages, 1)
        effective = pages / self.hot_boost if hot else float(pages)
        ratio = self.cache_pages / max(effective, 1.0)
        if ratio >= 1.0:
            return self.max_hit
        # partial caching: assume the cached fraction absorbs its share of
        # accesses, slightly sublinearly (LRU churn under scans)
        return min(max(0.85 * ratio, self.min_hit), self.max_hit)

    def physical_reads(self, table: Table, logical_pages: float, hot: bool = False) -> float:
        """Physical page reads for ``logical_pages`` logical accesses."""
        if logical_pages < 0:
            raise ValueError("logical_pages must be non-negative")
        return logical_pages * (1.0 - self.hit_ratio(table, hot=hot))
