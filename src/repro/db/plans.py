"""Query plan operator trees and the canonical Figure-1 plan for TPC-H Q2.

A plan is a tree of :class:`PlanOperator`.  Leaves access a base table (and
therefore, through the catalog's tablespace mapping, a SAN volume); interior
operators consume their children's output.  The module also provides plan
diffing (the structural half of Module PD) and a text renderer used by the
APG browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterator

__all__ = [
    "OpType",
    "PlanOperator",
    "PlanDiff",
    "diff_plans",
    "canonical_q2_plan",
    "render_plan",
]


class OpType(str, Enum):
    """Operator kinds (PostgreSQL-flavoured)."""

    SEQ_SCAN = "Seq Scan"
    INDEX_SCAN = "Index Scan"
    SORT = "Sort"
    HASH = "Hash"
    HASH_JOIN = "Hash Join"
    MERGE_JOIN = "Merge Join"
    NESTED_LOOP = "Nested Loop"
    AGGREGATE = "Aggregate"
    GROUP_AGGREGATE = "GroupAggregate"
    MATERIALIZE = "Materialize"
    LIMIT = "Limit"
    RESULT = "Result"

    @property
    def is_scan(self) -> bool:
        return self in (OpType.SEQ_SCAN, OpType.INDEX_SCAN)


@dataclass
class PlanOperator:
    """One node of a plan tree.

    ``op_id`` follows the paper's O1..On labelling.  ``est_rows`` is the
    optimizer's cardinality estimate; actual record counts come from the
    executor per run (the "record-counts (estimated and actual)" the APG
    stores per operator).  ``loops`` models repeated execution of inner
    sides of nested loops.
    """

    op_id: str
    op_type: OpType
    children: list["PlanOperator"] = field(default_factory=list)
    table: str | None = None
    index: str | None = None
    est_rows: float = 1.0
    est_cost: float = 0.0
    loops: int = 1
    selectivity: float = 1.0
    detail: str = ""

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["PlanOperator"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def operators(self) -> list["PlanOperator"]:
        return list(self.walk())

    def leaves(self) -> list["PlanOperator"]:
        return [op for op in self.walk() if not op.children]

    def find(self, op_id: str) -> "PlanOperator":
        for op in self.walk():
            if op.op_id == op_id:
                return op
        raise KeyError(f"no operator {op_id!r} in plan")

    def parent_map(self) -> dict[str, str | None]:
        """op_id → parent op_id (None for the root)."""
        parents: dict[str, str | None] = {self.op_id: None}
        for op in self.walk():
            for child in op.children:
                parents[child.op_id] = op.op_id
        return parents

    def ancestors_of(self, op_id: str) -> list[str]:
        """Ancestor op_ids of ``op_id`` ordered from parent to root."""
        parents = self.parent_map()
        if op_id not in parents:
            raise KeyError(f"no operator {op_id!r} in plan")
        chain = []
        cursor = parents[op_id]
        while cursor is not None:
            chain.append(cursor)
            cursor = parents[cursor]
        return chain

    def subtree_ids(self, op_id: str) -> set[str]:
        return {op.op_id for op in self.find(op_id).walk()}

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def tables_used(self) -> set[str]:
        return {op.table for op in self.walk() if op.table}

    def leaf_ids_on_tables(self, tables: set[str]) -> set[str]:
        return {op.op_id for op in self.leaves() if op.table in tables}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Structural signature: operator types, tables and indexes, shape.

        Two plans with the same signature are "the same plan P" in the
        workflow's sense, regardless of cost/cardinality estimates.
        """
        parts = [self.op_type.value]
        if self.table:
            parts.append(self.table)
        if self.index:
            parts.append(self.index)
        inner = ",".join(child.signature() for child in self.children)
        return f"{'/'.join(parts)}({inner})"

    def clone(self) -> "PlanOperator":
        return PlanOperator(
            op_id=self.op_id,
            op_type=self.op_type,
            children=[c.clone() for c in self.children],
            table=self.table,
            index=self.index,
            est_rows=self.est_rows,
            est_cost=self.est_cost,
            loops=self.loops,
            selectivity=self.selectivity,
            detail=self.detail,
        )


@dataclass(frozen=True)
class PlanDiff:
    """Outcome of comparing the plans of satisfactory vs unsatisfactory runs."""

    same: bool
    only_in_first: tuple[str, ...] = ()
    only_in_second: tuple[str, ...] = ()
    changed_scans: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.same:
            return "plans identical"
        bits = []
        if self.only_in_first:
            bits.append(f"removed: {', '.join(self.only_in_first)}")
        if self.only_in_second:
            bits.append(f"added: {', '.join(self.only_in_second)}")
        if self.changed_scans:
            bits.append(f"scan changes: {', '.join(self.changed_scans)}")
        return "; ".join(bits) or "plans differ structurally"


def _op_multiset(plan: PlanOperator) -> dict[str, int]:
    counts: dict[str, int] = {}
    for op in plan.walk():
        key = f"{op.op_type.value}" + (f"[{op.table}]" if op.table else "")
        counts[key] = counts.get(key, 0) + 1
    return counts


def diff_plans(first: PlanOperator, second: PlanOperator) -> PlanDiff:
    """Structural diff between two plans (Module PD's first step)."""
    if first.signature() == second.signature():
        return PlanDiff(same=True)
    a, b = _op_multiset(first), _op_multiset(second)
    only_a = tuple(sorted(k for k in a if a[k] > b.get(k, 0)))
    only_b = tuple(sorted(k for k in b if b[k] > a.get(k, 0)))
    scans = []
    for table in sorted(first.tables_used() | second.tables_used()):
        first_scans = sorted(
            op.op_type.value for op in first.walk() if op.table == table and op.op_type.is_scan
        )
        second_scans = sorted(
            op.op_type.value for op in second.walk() if op.table == table and op.op_type.is_scan
        )
        if first_scans != second_scans:
            scans.append(f"{table}: {first_scans} -> {second_scans}")
    return PlanDiff(
        same=False,
        only_in_first=only_a,
        only_in_second=only_b,
        changed_scans=tuple(scans),
    )


def canonical_q2_plan(row_scale: float = 1.0) -> PlanOperator:
    """The hand-assembled Figure-1 plan for TPC-H Q2: 25 operators, 9 leaves.

    Operator ids satisfy every constraint the paper states:

    * leaves ``O8`` and ``O22`` are supplier accesses (tablespace on **V1**);
    * the remaining 7 leaves (nation ×2, region ×2, partsupp ×2, part) are on
      **V2**, with ``O4`` the partsupp leaf that becomes scenario 1's noise
      false positive and ``O23`` the Index Scan on part whose dependency
      paths Figure 1 walks through;
    * ancestors(O8) = {O7, O6, O3, O2, O1} and
      ancestors(O22) = {O21, O20, O18, O17, O3, O2, O1}, matching the
      correlated-operator set reported for scenario 1 (modulo the root O1 —
      see DESIGN.md).

    ``row_scale`` scales cardinality estimates with the TPC-H scale factor.
    """

    def op(
        op_id: str,
        op_type: OpType,
        children: list[PlanOperator] | None = None,
        **kw,
    ) -> PlanOperator:
        if "est_rows" in kw:
            kw["est_rows"] = max(kw["est_rows"] * row_scale, 1.0)
        return PlanOperator(op_id=op_id, op_type=op_type, children=children or [], **kw)

    # --- main block: part x partsupp x supplier x nation x region -------
    o12 = op("O12", OpType.SEQ_SCAN, table="region", est_rows=1, selectivity=0.2,
             detail="r_name = 'EUROPE'")
    o11 = op("O11", OpType.HASH, [o12], est_rows=1)
    o10 = op("O10", OpType.SEQ_SCAN, table="nation", est_rows=25, selectivity=1.0)
    o9 = op("O9", OpType.HASH_JOIN, [o10, o11], est_rows=5,
            detail="n_regionkey = r_regionkey")
    o8 = op("O8", OpType.INDEX_SCAN, table="supplier", index="ix_supplier_nation",
            est_rows=400, loops=5, selectivity=0.04,
            detail="s_nationkey = n_nationkey")
    o7 = op("O7", OpType.NESTED_LOOP, [o9, o8], est_rows=2000)
    o23 = op("O23", OpType.INDEX_SCAN, table="part", index="pk_part",
             est_rows=1, loops=1600, selectivity=0.002,
             detail="p_partkey = ps_partkey AND p_size = 15 AND p_type LIKE '%BRASS'"
                    " (memoized probes)")
    o4 = op("O4", OpType.SEQ_SCAN, table="partsupp", est_rows=800_000, selectivity=1.0)
    o13 = op("O13", OpType.NESTED_LOOP, [o4, o23], est_rows=1600)
    o5 = op("O5", OpType.HASH, [o13], est_rows=1600)
    o6 = op("O6", OpType.HASH_JOIN, [o7, o5], est_rows=320,
            detail="s_suppkey = ps_suppkey")

    # --- subquery block: min(ps_supplycost) per part in EUROPE ----------
    o25 = op("O25", OpType.SEQ_SCAN, table="region", est_rows=1, selectivity=0.2,
             detail="r_name = 'EUROPE'")
    o24 = op("O24", OpType.HASH, [o25], est_rows=1)
    o14 = op("O14", OpType.SEQ_SCAN, table="nation", est_rows=25, selectivity=1.0)
    o16 = op("O16", OpType.HASH_JOIN, [o14, o24], est_rows=5,
             detail="n_regionkey = r_regionkey")
    o15 = op("O15", OpType.HASH, [o16], est_rows=5)
    o19 = op("O19", OpType.SEQ_SCAN, table="partsupp", est_rows=800_000, selectivity=1.0)
    o22 = op("O22", OpType.INDEX_SCAN, table="supplier", index="pk_supplier",
             est_rows=1, loops=10_000, selectivity=0.0001,
             detail="s_suppkey = ps_suppkey (memoized probes)")
    o21 = op("O21", OpType.NESTED_LOOP, [o19, o22], est_rows=160_000)
    o20 = op("O20", OpType.HASH_JOIN, [o21, o15], est_rows=32_000,
             detail="s_nationkey = n_nationkey")
    o18 = op("O18", OpType.GROUP_AGGREGATE, [o20], est_rows=29_000,
             detail="min(ps_supplycost) GROUP BY ps_partkey")
    o17 = op("O17", OpType.HASH, [o18], est_rows=29_000)

    # --- top: join blocks, order, limit ---------------------------------
    o3 = op("O3", OpType.HASH_JOIN, [o6, o17], est_rows=100,
            detail="ps_partkey = min.ps_partkey AND ps_supplycost = min_cost")
    o2 = op("O2", OpType.SORT, [o3], est_rows=100,
            detail="s_acctbal DESC, n_name, s_name, p_partkey")
    o1 = op("O1", OpType.LIMIT, [o2], est_rows=100, detail="LIMIT 100")

    assert o1.size == 25, f"canonical plan must have 25 operators, got {o1.size}"
    assert len(o1.leaves()) == 9, "canonical plan must have 9 leaves"
    return o1


def render_plan(
    plan: PlanOperator,
    annotate: Callable[[PlanOperator], str] | None = None,
) -> str:
    """ASCII tree rendering (the APG browser's left pane, Figure 6)."""
    lines: list[str] = []

    def visit(op: PlanOperator, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        label = f"{op.op_id} {op.op_type.value}"
        if op.table:
            label += f" on {op.table}"
        if op.index:
            label += f" using {op.index}"
        if annotate is not None:
            extra = annotate(op)
            if extra:
                label += f"  [{extra}]"
        lines.append(prefix + connector + label)
        child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
        for i, child in enumerate(op.children):
            visit(child, child_prefix, i == len(op.children) - 1, False)

    visit(plan, "", True, True)
    return "\n".join(lines)
