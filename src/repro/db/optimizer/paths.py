"""Access-path selection: sequential vs index scan per base table."""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog import Catalog, Index
from ..plans import OpType
from ..query import QuerySpec
from .cost import AccessEstimate, CostModel

__all__ = ["AccessPath", "best_access_path", "candidate_paths"]


@dataclass(frozen=True)
class AccessPath:
    """One way to read a base table."""

    table: str
    op_type: OpType
    estimate: AccessEstimate
    selectivity: float
    index: Index | None = None

    @property
    def cost(self) -> float:
        return self.estimate.cost

    @property
    def rows(self) -> float:
        return self.estimate.rows


def candidate_paths(
    model: CostModel, query: QuerySpec, table_name: str
) -> list[AccessPath]:
    """All access paths for ``table_name``: the seq scan plus one index scan
    per index whose column carries a filter predicate."""
    table = model.catalog.table(table_name)
    selectivity = query.selectivity_of(table_name)
    paths = [
        AccessPath(
            table=table_name,
            op_type=OpType.SEQ_SCAN,
            estimate=model.seq_scan(table, selectivity),
            selectivity=selectivity,
        )
    ]
    if not model.config.enable_indexscan:
        return paths
    predicate_columns = {
        p.column: p.selectivity for p in query.predicates if p.table == table_name
    }
    for index in model.catalog.indexes_on(table_name):
        if index.column not in predicate_columns:
            continue
        # the index narrows by its own column; residual filters apply after
        index_sel = predicate_columns[index.column]
        est = model.index_scan(table, index, index_sel)
        residual = selectivity / index_sel
        paths.append(
            AccessPath(
                table=table_name,
                op_type=OpType.INDEX_SCAN,
                estimate=AccessEstimate(cost=est.cost, rows=max(est.rows * residual, 1.0)),
                selectivity=selectivity,
                index=index,
            )
        )
    return paths


def best_access_path(model: CostModel, query: QuerySpec, table_name: str) -> AccessPath:
    """Cheapest access path for one table under the current config/stats."""
    return min(candidate_paths(model, query, table_name), key=lambda p: p.cost)
