"""Top-level optimizer: QuerySpec → PlanOperator tree.

Converts the winning join tree into a concrete operator tree with O1..On ids
(pre-order), adding Sort/Limit/Aggregate shaping on top.  The optimizer is
deterministic given (catalog, config, query), so Module PD can *replay* it
under hypothetical reverted changes to pinpoint what flipped a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog import Catalog
from ..plans import OpType, PlanOperator
from ..query import QuerySpec
from .cost import CostModel, DbConfig
from .joins import BaseRel, JoinRel, JoinTree, enumerate_joins

__all__ = ["Optimizer"]


@dataclass
class Optimizer:
    """Cost-based plan builder over a catalog and configuration."""

    catalog: Catalog
    config: DbConfig = field(default_factory=DbConfig)

    def plan(self, query: QuerySpec) -> PlanOperator:
        """Produce the cheapest plan for ``query`` with pre-order O-ids."""
        model = CostModel(catalog=self.catalog, config=self.config)
        tree = enumerate_joins(model, query)
        root = self._convert(tree, query)
        if query.aggregate:
            root = PlanOperator(
                op_id="tmp",
                op_type=OpType.AGGREGATE,
                children=[root],
                est_rows=max(root.est_rows / 10.0, 1.0),
                est_cost=model.aggregate(tree.estimate, groups=root.est_rows / 10.0).cost,
            )
        if query.order_by:
            root = PlanOperator(
                op_id="tmp",
                op_type=OpType.SORT,
                children=[root],
                est_rows=root.est_rows,
                est_cost=model.sort(tree.estimate).cost,
            )
        if query.limit is not None:
            root = PlanOperator(
                op_id="tmp",
                op_type=OpType.LIMIT,
                children=[root],
                est_rows=min(float(query.limit), root.est_rows),
                est_cost=root.est_cost,
                detail=f"LIMIT {query.limit}",
            )
        self._assign_ids(root)
        return root

    def replan(self, query: QuerySpec, config: DbConfig | None = None,
               catalog: Catalog | None = None) -> PlanOperator:
        """Plan under an alternative config/catalog (what-if replay for PD)."""
        alt = Optimizer(catalog=catalog or self.catalog, config=config or self.config)
        return alt.plan(query)

    # ------------------------------------------------------------------
    def _convert(self, tree: JoinTree, query: QuerySpec) -> PlanOperator:
        if isinstance(tree, BaseRel):
            path = tree.path
            return PlanOperator(
                op_id="tmp",
                op_type=path.op_type,
                table=path.table,
                index=path.index.name if path.index else None,
                est_rows=path.rows,
                est_cost=path.cost,
                selectivity=path.selectivity,
            )
        assert isinstance(tree, JoinRel)
        outer_op = self._convert(tree.outer, query)
        if tree.method == "hash":
            inner_op = self._convert(tree.inner, query)
            hash_node = PlanOperator(
                op_id="tmp",
                op_type=OpType.HASH,
                children=[inner_op],
                est_rows=inner_op.est_rows,
                est_cost=inner_op.est_cost,
            )
            return PlanOperator(
                op_id="tmp",
                op_type=OpType.HASH_JOIN,
                children=[outer_op, hash_node],
                est_rows=tree.rows,
                est_cost=tree.cost,
                detail=tree.join_detail,
            )
        if tree.method == "merge":
            inner_op = self._convert(tree.inner, query)
            sorted_outer = PlanOperator(
                op_id="tmp",
                op_type=OpType.SORT,
                children=[outer_op],
                est_rows=outer_op.est_rows,
                est_cost=outer_op.est_cost,
            )
            sorted_inner = PlanOperator(
                op_id="tmp",
                op_type=OpType.SORT,
                children=[inner_op],
                est_rows=inner_op.est_rows,
                est_cost=inner_op.est_cost,
            )
            return PlanOperator(
                op_id="tmp",
                op_type=OpType.MERGE_JOIN,
                children=[sorted_outer, sorted_inner],
                est_rows=tree.rows,
                est_cost=tree.cost,
                detail=tree.join_detail,
            )
        if tree.method == "nestloop-index":
            table = self.catalog.table(tree.probe_table)  # type: ignore[arg-type]
            ndv_col = self.catalog.index(tree.probe_index).column  # type: ignore[arg-type]
            rows_per_probe = max(
                table.row_count / max(table.column(ndv_col).ndv, 1), 1.0
            )
            inner_op = PlanOperator(
                op_id="tmp",
                op_type=OpType.INDEX_SCAN,
                table=tree.probe_table,
                index=tree.probe_index,
                est_rows=rows_per_probe,
                loops=max(int(tree.outer.rows), 1),
                selectivity=min(rows_per_probe / max(table.row_count, 1), 1.0),
                detail=tree.join_detail,
            )
            return PlanOperator(
                op_id="tmp",
                op_type=OpType.NESTED_LOOP,
                children=[outer_op, inner_op],
                est_rows=tree.rows,
                est_cost=tree.cost,
                detail=tree.join_detail,
            )
        inner_op = self._convert(tree.inner, query)
        return PlanOperator(
            op_id="tmp",
            op_type=OpType.NESTED_LOOP,
            children=[outer_op, inner_op],
            est_rows=tree.rows,
            est_cost=tree.cost,
            detail=tree.join_detail,
        )

    @staticmethod
    def _assign_ids(root: PlanOperator) -> None:
        for i, op in enumerate(root.walk(), start=1):
            op.op_id = f"O{i}"
