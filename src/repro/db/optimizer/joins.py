"""Join enumeration: System-R style dynamic programming over table subsets.

For the handful of tables TPC-H queries join (≤ 8 here), exhaustive subset DP
is cheap and gives the optimizer genuine sensitivity: dropping an index,
changing ``random_page_cost`` or refreshing statistics flips the chosen join
order/method, which is exactly what Module PD's plan-change analysis needs to
reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..query import QuerySpec
from .cost import AccessEstimate, CostModel
from .paths import AccessPath, best_access_path

__all__ = ["JoinTree", "BaseRel", "JoinRel", "enumerate_joins"]


@dataclass(frozen=True)
class JoinTree:
    """Abstract node of the join DP (converted to PlanOperators later)."""

    estimate: AccessEstimate

    @property
    def cost(self) -> float:
        return self.estimate.cost

    @property
    def rows(self) -> float:
        return self.estimate.rows


@dataclass(frozen=True)
class BaseRel(JoinTree):
    path: AccessPath = None  # type: ignore[assignment]


@dataclass(frozen=True)
class JoinRel(JoinTree):
    method: str = "hash"  # "hash" | "merge" | "nestloop-index" | "nestloop"
    outer: JoinTree = None  # type: ignore[assignment]
    inner: JoinTree = None  # type: ignore[assignment]
    #: for nestloop-index: the inner base table + index used for probing
    probe_table: str | None = None
    probe_index: str | None = None
    join_detail: str = ""


def _join_rows(model: CostModel, query: QuerySpec, left: set[str], right: set[str],
               left_rows: float, right_rows: float) -> tuple[float, str]:
    """Cardinality after applying every join edge crossing the split."""
    edges = query.join_edges_between(left, right)
    if not edges:
        return left_rows * right_rows, "cartesian"
    rows = left_rows * right_rows
    details = []
    for edge in edges:
        lt = edge.left_table if edge.left_table in left else edge.right_table
        rt = edge.other(lt)
        l_ndv = model.catalog.table(lt).column(edge.column_for(lt)).ndv
        r_ndv = model.catalog.table(rt).column(edge.column_for(rt)).ndv
        rows /= max(l_ndv, r_ndv, 1)
        details.append(f"{lt}.{edge.column_for(lt)} = {rt}.{edge.column_for(rt)}")
    return max(rows, 1.0), " AND ".join(details)


def enumerate_joins(model: CostModel, query: QuerySpec) -> JoinTree:
    """Best join tree over all tables of ``query``.

    Cross joins are only considered when no connected split exists, with
    their natural (huge) cardinality acting as the penalty.
    """
    tables = list(query.tables)
    n = len(tables)
    index_of = {t: i for i, t in enumerate(tables)}

    best: dict[int, JoinTree] = {}
    for table in tables:
        path = best_access_path(model, query, table)
        best[1 << index_of[table]] = BaseRel(estimate=path.estimate, path=path)

    def tables_in(mask: int) -> set[str]:
        return {t for t in tables if mask & (1 << index_of[t])}

    for size in range(2, n + 1):
        for combo in combinations(range(n), size):
            mask = 0
            for i in combo:
                mask |= 1 << i
            candidates: list[JoinTree] = []
            # enumerate proper, non-empty splits; (sub, rest) and (rest, sub)
            # are both generated because outer/inner roles are asymmetric
            sub = (mask - 1) & mask
            while sub:
                rest = mask ^ sub
                if rest and sub in best and rest in best:
                    candidates.extend(_join_candidates(model, query, best[sub], best[rest],
                                                       tables_in(sub), tables_in(rest)))
                sub = (sub - 1) & mask
            connected = [c for c in candidates
                         if not (isinstance(c, JoinRel) and c.join_detail == "cartesian")]
            pool = connected or candidates
            if pool:
                best[mask] = min(pool, key=lambda t: t.cost)

    full = (1 << n) - 1
    if full not in best:
        raise RuntimeError("join enumeration failed to cover all tables")
    return best[full]


def _join_candidates(
    model: CostModel,
    query: QuerySpec,
    outer: JoinTree,
    inner: JoinTree,
    outer_tables: set[str],
    inner_tables: set[str],
) -> list[JoinRel]:
    rows, detail = _join_rows(model, query, outer_tables, inner_tables,
                              outer.rows, inner.rows)
    candidates: list[JoinRel] = []
    if model.config.enable_hashjoin:
        est = model.hash_join(outer.estimate, inner.estimate, rows)
        candidates.append(
            JoinRel(estimate=est, method="hash", outer=outer, inner=inner,
                    join_detail=detail)
        )
    if detail != "cartesian":
        # sort-merge join: competitive when hash joins are disabled or when
        # work_mem is too small for the build side
        est = model.merge_join(outer.estimate, inner.estimate, rows)
        candidates.append(
            JoinRel(estimate=est, method="merge", outer=outer, inner=inner,
                    join_detail=detail)
        )
    # index nested loop: inner must be a single filtered base table with an
    # index on (one of) the join column(s)
    if model.config.enable_nestloop and len(inner_tables) == 1 and isinstance(inner, BaseRel):
        inner_table = next(iter(inner_tables))
        for edge in query.join_edges_between(outer_tables, inner_tables):
            col = edge.column_for(inner_table)
            for index in model.catalog.indexes_on(inner_table, col):
                table = model.catalog.table(inner_table)
                ndv = table.column(col).ndv
                rows_per_probe = max(table.row_count / max(ndv, 1), 1.0)
                probe_cost = model.index_probe(table, index, rows_per_probe)
                est = model.nested_loop(outer.estimate, probe_cost, rows)
                candidates.append(
                    JoinRel(
                        estimate=est,
                        method="nestloop-index",
                        outer=outer,
                        inner=inner,
                        probe_table=inner_table,
                        probe_index=index.name,
                        join_detail=detail,
                    )
                )
    if not candidates:  # fall back to a plain (cartesian-ish) nested loop
        est = model.nested_loop(outer.estimate, inner.cost, rows)
        candidates.append(
            JoinRel(estimate=est, method="nestloop", outer=outer, inner=inner,
                    join_detail=detail)
        )
    return candidates
