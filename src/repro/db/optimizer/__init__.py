"""Cost-based query optimizer: cost model, access paths, join enumeration."""

from .cost import AccessEstimate, CostModel, DbConfig
from .paths import AccessPath, best_access_path, candidate_paths
from .joins import BaseRel, JoinRel, JoinTree, enumerate_joins
from .optimizer import Optimizer

__all__ = [
    "AccessEstimate",
    "CostModel",
    "DbConfig",
    "AccessPath",
    "best_access_path",
    "candidate_paths",
    "JoinTree",
    "BaseRel",
    "JoinRel",
    "enumerate_joins",
    "Optimizer",
]
