"""Cost model and database configuration parameters.

Models the PostgreSQL-style parameters that matter to plan choice.  These
parameters are part of the *configuration* the APG records: the paper's
plan-change analysis explicitly lists "changes in configuration parameters
used during plan selection" as a cause Module PD must detect, and reference
[18] (Reiss & Kanungo) showed how sensitive plan choice is to storage cost
parameters — which is exactly the knob a SAN change turns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..catalog import Catalog, Index, Table

__all__ = ["DbConfig", "CostModel", "AccessEstimate"]


@dataclass(frozen=True)
class DbConfig:
    """Optimizer-visible configuration (a subset of postgresql.conf)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    work_mem_kb: int = 4096
    effective_cache_size_pages: int = 65536
    enable_hashjoin: bool = True
    enable_nestloop: bool = True
    enable_indexscan: bool = True

    def with_changes(self, **changes) -> "DbConfig":
        """Functional update (configs are immutable so runs are comparable)."""
        return replace(self, **changes)

    def snapshot(self) -> dict:
        return {
            "seq_page_cost": self.seq_page_cost,
            "random_page_cost": self.random_page_cost,
            "cpu_tuple_cost": self.cpu_tuple_cost,
            "cpu_index_tuple_cost": self.cpu_index_tuple_cost,
            "cpu_operator_cost": self.cpu_operator_cost,
            "work_mem_kb": self.work_mem_kb,
            "effective_cache_size_pages": self.effective_cache_size_pages,
            "enable_hashjoin": self.enable_hashjoin,
            "enable_nestloop": self.enable_nestloop,
            "enable_indexscan": self.enable_indexscan,
        }


@dataclass(frozen=True)
class AccessEstimate:
    """Cost/cardinality estimate for one access path or join."""

    cost: float
    rows: float

    def __post_init__(self) -> None:
        if self.cost < 0 or self.rows < 0:
            raise ValueError("cost and rows must be non-negative")


@dataclass
class CostModel:
    """Cost formulas over a catalog and a configuration."""

    catalog: Catalog
    config: DbConfig = field(default_factory=DbConfig)

    # -- scans -----------------------------------------------------------
    def seq_scan(self, table: Table, selectivity: float = 1.0) -> AccessEstimate:
        """Full scan: every heap page sequentially + per-tuple CPU."""
        cost = (
            table.pages * self.config.seq_page_cost
            + table.row_count * self.config.cpu_tuple_cost
        )
        return AccessEstimate(cost=cost, rows=max(table.row_count * selectivity, 1.0))

    def index_scan(
        self, table: Table, index: Index, selectivity: float
    ) -> AccessEstimate:
        """Index scan fetching ``selectivity`` of the table.

        Heap fetches are random I/O discounted by the fraction of the table
        expected to be cached (``effective_cache_size``) — the standard way
        storage cost parameters leak into plan choice.
        """
        matched = max(table.row_count * selectivity, 1.0)
        descent = index.height(table.row_count) * self.config.random_page_cost
        leaf = index.leaf_pages(table.row_count) * selectivity * self.config.seq_page_cost
        cached_fraction = min(
            self.config.effective_cache_size_pages / max(table.pages, 1), 1.0
        )
        heap_pages = min(matched, float(table.pages))
        effective_random = self.config.random_page_cost * (1.0 - 0.8 * cached_fraction)
        heap = heap_pages * max(effective_random, self.config.seq_page_cost * 0.5)
        cpu = matched * (self.config.cpu_index_tuple_cost + self.config.cpu_tuple_cost)
        return AccessEstimate(cost=descent + leaf + heap + cpu, rows=matched)

    def index_probe(self, table: Table, index: Index, rows_per_probe: float) -> float:
        """Cost of ONE inner-side index lookup (for nested-loop joins)."""
        descent = index.height(table.row_count) * self.config.random_page_cost
        cached_fraction = min(
            self.config.effective_cache_size_pages / max(table.pages, 1), 1.0
        )
        effective_random = self.config.random_page_cost * (1.0 - 0.8 * cached_fraction)
        heap = max(rows_per_probe, 1.0) * max(effective_random, 0.1)
        cpu = max(rows_per_probe, 1.0) * (
            self.config.cpu_index_tuple_cost + self.config.cpu_tuple_cost
        )
        return descent + heap + cpu

    # -- joins -------------------------------------------------------------
    def hash_join(
        self,
        outer: AccessEstimate,
        inner: AccessEstimate,
        join_rows: float,
    ) -> AccessEstimate:
        """Build a hash on the inner, probe with the outer."""
        build = inner.rows * (self.config.cpu_operator_cost * 2.0)
        probe = outer.rows * (self.config.cpu_operator_cost * 1.5)
        spill = 0.0
        inner_kb = inner.rows * 0.1  # ~100 bytes/row
        if inner_kb > self.config.work_mem_kb:
            # grace-hash style spill: write + reread both inputs once
            spill = (inner.rows + outer.rows) * self.config.cpu_operator_cost * 2.0
        cost = outer.cost + inner.cost + build + probe + spill
        return AccessEstimate(cost=cost, rows=max(join_rows, 1.0))

    def nested_loop(
        self,
        outer: AccessEstimate,
        inner_probe_cost: float,
        join_rows: float,
    ) -> AccessEstimate:
        """Outer once; parametrised inner per outer row."""
        cost = outer.cost + outer.rows * inner_probe_cost
        return AccessEstimate(cost=cost, rows=max(join_rows, 1.0))

    def merge_join(
        self,
        outer: AccessEstimate,
        inner: AccessEstimate,
        join_rows: float,
    ) -> AccessEstimate:
        cost = (
            self.sort(outer).cost
            + self.sort(inner).cost
            + (outer.rows + inner.rows) * self.config.cpu_operator_cost
        )
        return AccessEstimate(cost=cost, rows=max(join_rows, 1.0))

    # -- other operators ---------------------------------------------------
    def sort(self, input_est: AccessEstimate) -> AccessEstimate:
        n = max(input_est.rows, 2.0)
        cost = input_est.cost + n * math.log2(n) * self.config.cpu_operator_cost * 2.0
        return AccessEstimate(cost=cost, rows=input_est.rows)

    def aggregate(self, input_est: AccessEstimate, groups: float) -> AccessEstimate:
        cost = input_est.cost + input_est.rows * self.config.cpu_operator_cost * 2.0
        return AccessEstimate(cost=cost, rows=max(min(groups, input_est.rows), 1.0))

    # -- cardinality ---------------------------------------------------------
    def join_cardinality(
        self,
        left_rows: float,
        right_rows: float,
        left_ndv: int,
        right_ndv: int,
    ) -> float:
        """Classic System-R estimate: |L||R| / max(ndv(L), ndv(R))."""
        return max(left_rows * right_rows / max(left_ndv, right_ndv, 1), 1.0)
