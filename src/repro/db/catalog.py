"""Database catalog: tables, columns, indexes, tablespaces, statistics.

The catalog is the bridge between the two layers of the APG: every table
belongs to a tablespace, and every tablespace is mapped to a SAN volume
(System Managed Storage in the paper's testbed — Ext3 file systems on V1 and
V2).  Given a plan operator that touches a table, the catalog resolves the
volume its I/O lands on, which seeds the dependency-path computation.

Statistics (row counts, column NDVs) feed the cost-based optimizer, and
*changes* to them are one of the plan-change causes Module PD looks for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable

__all__ = ["Column", "Table", "Index", "Tablespace", "Catalog", "CatalogError", "PAGE_SIZE"]

#: Bytes per page; used to derive page counts from row counts and widths.
PAGE_SIZE = 8192


class CatalogError(ValueError):
    """Raised for unknown or conflicting catalog objects."""


@dataclass(frozen=True)
class Column:
    """A table column with the statistics the optimizer consumes."""

    name: str
    ndv: int = 1
    avg_width: int = 8
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.ndv < 1:
            raise ValueError("ndv must be >= 1")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be in [0, 1]")


@dataclass
class Table:
    """A base table: rows, width, columns and its tablespace."""

    name: str
    row_count: int
    row_width: int
    tablespace: str
    columns: dict[str, Column] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be non-negative")
        if self.row_width <= 0:
            raise ValueError("row_width must be positive")

    @property
    def pages(self) -> int:
        """Heap pages, derived from rows and width."""
        rows_per_page = max(PAGE_SIZE // self.row_width, 1)
        return max(math.ceil(self.row_count / rows_per_page), 1)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None


@dataclass
class Index:
    """A (single-column) B-tree index."""

    name: str
    table: str
    column: str
    unique: bool = False

    def height(self, table_rows: int) -> int:
        """Approximate B-tree height for descent cost."""
        if table_rows <= 1:
            return 1
        return max(1, math.ceil(math.log(max(table_rows, 2), 300)))

    def leaf_pages(self, table_rows: int) -> int:
        return max(1, table_rows // 300)


@dataclass(frozen=True)
class Tablespace:
    """Named storage container mapped onto one SAN volume."""

    name: str
    volume_id: str


class Catalog:
    """Mutable schema + statistics container.

    Mutations that matter to diagnosis (index drops/creates, row-count
    updates) are the raw material of Module PD's plan-change analysis, so the
    catalog supports structural snapshots for the config store to diff.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}
        self._tablespaces: dict[str, Tablespace] = {}

    # -- tablespaces -----------------------------------------------------
    def add_tablespace(self, tablespace: Tablespace) -> Tablespace:
        if tablespace.name in self._tablespaces:
            raise CatalogError(f"duplicate tablespace {tablespace.name!r}")
        self._tablespaces[tablespace.name] = tablespace
        return tablespace

    def tablespace(self, name: str) -> Tablespace:
        try:
            return self._tablespaces[name]
        except KeyError:
            raise CatalogError(f"unknown tablespace {name!r}") from None

    @property
    def tablespaces(self) -> list[Tablespace]:
        return list(self._tablespaces.values())

    # -- tables ----------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise CatalogError(f"duplicate table {table.name!r}")
        if table.tablespace not in self._tablespaces:
            raise CatalogError(
                f"table {table.name!r} references unknown tablespace {table.tablespace!r}"
            )
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    def volume_of_table(self, name: str) -> str:
        """The SAN volume holding a table's tablespace — the DB→SAN link."""
        return self.tablespace(self.table(name).tablespace).volume_id

    def tables_on_volume(self, volume_id: str) -> list[Table]:
        return [
            t
            for t in self._tables.values()
            if self.tablespace(t.tablespace).volume_id == volume_id
        ]

    def update_row_count(self, table_name: str, row_count: int) -> None:
        """ANALYZE-style statistics refresh (a plan-change trigger)."""
        table = self.table(table_name)
        if row_count < 0:
            raise CatalogError("row_count must be non-negative")
        table.row_count = row_count

    # -- indexes ---------------------------------------------------------
    def create_index(self, index: Index) -> Index:
        if index.name in self._indexes:
            raise CatalogError(f"duplicate index {index.name!r}")
        table = self.table(index.table)
        table.column(index.column)  # validates the column exists
        self._indexes[index.name] = index
        return index

    def drop_index(self, name: str) -> Index:
        try:
            return self._indexes.pop(name)
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    @property
    def indexes(self) -> list[Index]:
        return list(self._indexes.values())

    def indexes_on(self, table_name: str, column: str | None = None) -> list[Index]:
        return [
            idx
            for idx in self._indexes.values()
            if idx.table == table_name and (column is None or idx.column == column)
        ]

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """Structural + statistical snapshot for configuration diffing."""
        return {
            "tables": {
                t.name: {
                    "row_count": t.row_count,
                    "tablespace": t.tablespace,
                    "columns": sorted(t.columns),
                }
                for t in sorted(self._tables.values(), key=lambda t: t.name)
            },
            "indexes": {
                i.name: {"table": i.table, "column": i.column, "unique": i.unique}
                for i in sorted(self._indexes.values(), key=lambda i: i.name)
            },
            "tablespaces": {
                ts.name: ts.volume_id for ts in sorted(self._tablespaces.values(), key=lambda s: s.name)
            },
        }

    def clone(self) -> "Catalog":
        """Deep-enough copy for what-if replans (shares immutable columns)."""
        other = Catalog()
        for ts in self._tablespaces.values():
            other.add_tablespace(ts)
        for t in self._tables.values():
            other.add_table(
                Table(
                    name=t.name,
                    row_count=t.row_count,
                    row_width=t.row_width,
                    tablespace=t.tablespace,
                    columns=dict(t.columns),
                )
            )
        for i in self._indexes.values():
            other.create_index(replace(i))
        return other


def make_columns(specs: Iterable[tuple[str, int]]) -> dict[str, Column]:
    """Helper: build a column dict from (name, ndv) pairs."""
    return {name: Column(name=name, ndv=ndv) for name, ndv in specs}
