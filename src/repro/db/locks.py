"""Table-lock manager with injectable contention windows.

Scenario 5 of Table 1 is a *database-level* problem: a locking issue slows
the query while noisy volume metrics emit spurious SAN symptoms.  The lock
manager models that directly: contention windows add exponentially
distributed wait time to operators touching the locked table, and surface in
the ``Locks Held`` metric of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LockContention", "LockManager"]


@dataclass(frozen=True)
class LockContention:
    """A window of lock contention on a table."""

    table: str
    start: float
    end: float
    mean_wait_ms: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("contention window must have positive duration")
        if self.mean_wait_ms < 0:
            raise ValueError("mean_wait_ms must be non-negative")

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass
class LockManager:
    """Tracks contention windows and samples wait times."""

    contentions: list[LockContention] = field(default_factory=list)

    def add_contention(
        self, table: str, start: float, end: float, mean_wait_ms: float
    ) -> LockContention:
        contention = LockContention(table=table, start=start, end=end, mean_wait_ms=mean_wait_ms)
        self.contentions.append(contention)
        return contention

    def clear(self) -> None:
        self.contentions.clear()

    def active_contentions(self, time: float) -> list[LockContention]:
        return [c for c in self.contentions if c.active_at(time)]

    def wait_time_ms(
        self, table: str, time: float, rng: np.random.Generator | None = None
    ) -> float:
        """Sampled lock-wait time for one access to ``table`` at ``time``."""
        active = [c for c in self.active_contentions(time) if c.table == table]
        if not active:
            return 0.0
        # Seeded fallback so wait-time sampling reproduces when no RNG is
        # threaded through (the executor normally supplies one).
        rng = rng if rng is not None else np.random.default_rng(0)
        return float(sum(rng.exponential(c.mean_wait_ms) for c in active))

    def locks_held(self, time: float) -> int:
        """Metric: number of contended locks held at ``time``."""
        return len(self.active_contentions(time))
