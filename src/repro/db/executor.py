"""Analytical query executor: plans → per-operator timings and record counts.

This substrate plays the role of PostgreSQL in the paper's testbed.  For a
query run it produces exactly the per-operator monitoring data an APG stores
(Section 3): each operator's start time, stop time, and estimated vs actual
record counts — plus the decomposition (CPU / I/O / lock wait) that the
simulator knows but DIADS must *infer*.

Timing model
------------
All simulation times are in **seconds**; SAN latencies arrive in
milliseconds and are converted here.

* Leaf operators read pages.  Sequential scans touch every heap page and pay
  a discounted per-page latency (read-ahead); index scans pay full random
  latency on the pages the buffer cache misses.  The buffer model decides the
  miss rate; the SAN sample decides the per-read latency of the tablespace's
  volume — this is the database→SAN coupling that DIADS diagnoses.
* Interior operators pay CPU per input row (type-specific constants), with an
  ``n log n`` term for sorts.
* Lock waits are sampled from the lock manager per table access.
* Operators execute depth-first with children sequential, so an operator's
  [start, stop] window covers its subtree — the *inclusive* times through
  which a slow leaf propagates upward ("event flooding").
* Every operator's self time receives multiplicative log-normal noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .buffer import BufferModel
from .catalog import Catalog
from .locks import LockManager
from .plans import OpType, PlanOperator

__all__ = ["OperatorRuntime", "QueryRun", "Executor", "SEQ_LATENCY_DISCOUNT"]

#: Sequential reads pay this fraction of the volume's random-read latency.
SEQ_LATENCY_DISCOUNT = 0.3

#: CPU seconds per input row for interior operators.
_CPU_PER_ROW = {
    OpType.HASH_JOIN: 8e-7,
    OpType.MERGE_JOIN: 7e-7,
    OpType.NESTED_LOOP: 3e-7,
    OpType.HASH: 5e-7,
    OpType.SORT: 2e-7,  # multiplied by log2(n)
    OpType.AGGREGATE: 6e-7,
    OpType.GROUP_AGGREGATE: 6e-7,
    OpType.MATERIALIZE: 3e-7,
    OpType.LIMIT: 1e-8,
    OpType.RESULT: 1e-8,
}

#: CPU seconds per scanned row for leaf operators.
_SCAN_CPU_PER_ROW = 5e-7


@dataclass
class OperatorRuntime:
    """Measured execution of one operator during one run."""

    op_id: str
    op_type: OpType
    table: str | None
    volume_id: str | None
    start: float
    stop: float
    actual_rows: float
    est_rows: float
    self_time: float
    inclusive_time: float
    io_time: float = 0.0
    cpu_time: float = 0.0
    lock_wait: float = 0.0
    physical_reads: float = 0.0
    logical_reads: float = 0.0

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass
class QueryRun:
    """One complete execution of a plan — an APG annotation source."""

    run_id: str
    query_name: str
    plan: PlanOperator
    start_time: float
    operators: dict[str, OperatorRuntime] = field(default_factory=dict)
    db_metrics: dict[str, float] = field(default_factory=dict)
    satisfactory: bool | None = None

    @property
    def duration(self) -> float:
        root = self.operators[self.plan.op_id]
        return root.inclusive_time

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def plan_signature(self) -> str:
        return self.plan.signature()

    def operator_times(self) -> dict[str, float]:
        """op_id → inclusive running time (the t(Oi) of Module CO)."""
        return {op_id: rt.inclusive_time for op_id, rt in self.operators.items()}

    def record_counts(self) -> dict[str, float]:
        """op_id → actual output record count (Module CR's input)."""
        return {op_id: rt.actual_rows for op_id, rt in self.operators.items()}

    def volume_io_time(self) -> dict[str, float]:
        """volume_id → summed leaf I/O time (used by impact analysis)."""
        per_volume: dict[str, float] = {}
        for rt in self.operators.values():
            if rt.volume_id:
                per_volume[rt.volume_id] = per_volume.get(rt.volume_id, 0.0) + rt.io_time
        return per_volume


@dataclass
class Executor:
    """Analytical executor bound to a catalog, buffer model and lock manager."""

    catalog: Catalog
    buffer: BufferModel = field(default_factory=BufferModel)
    locks: LockManager = field(default_factory=LockManager)
    noise_sigma: float = 0.02

    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PlanOperator,
        at_time: float,
        volume_read_latency_ms: Mapping[str, float],
        data_multipliers: Mapping[str, float] | None = None,
        run_id: str = "run",
        query_name: str = "query",
        rng: np.random.Generator | None = None,
        cpu_multiplier: float = 1.0,
    ) -> QueryRun:
        """Execute ``plan`` starting at simulation time ``at_time``.

        ``volume_read_latency_ms`` maps volume ids to the per-read response
        time the SAN currently delivers; ``data_multipliers`` scales actual
        row counts per table (the data-property-change knob of scenario 3);
        ``cpu_multiplier`` stretches CPU work (server CPU contention).
        """
        if cpu_multiplier <= 0:
            raise ValueError("cpu_multiplier must be positive")
        # Seeded fallback: callers that do not thread an RNG through (the
        # environment always does) still get reproducible noise.
        rng = rng if rng is not None else np.random.default_rng(0)
        mults = dict(data_multipliers or {})
        run = QueryRun(run_id=run_id, query_name=query_name, plan=plan, start_time=at_time)

        def latency_for(table: str) -> float:
            volume = self.catalog.volume_of_table(table)
            return float(volume_read_latency_ms.get(volume, 1.0))

        def noisy(value: float) -> float:
            if value <= 0.0:
                return 0.0
            return value * float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

        def subtree_multiplier(op: PlanOperator) -> float:
            result = 1.0
            for table in op.tables_used():
                result *= mults.get(table, 1.0)
            return result

        def visit(op: PlanOperator, cursor: float) -> OperatorRuntime:
            start = cursor
            children_time = 0.0
            child_rows = 0.0
            for child in op.children:
                child_rt = visit(child, cursor + children_time)
                children_time += child_rt.inclusive_time
                child_rows += child_rt.actual_rows

            mult = subtree_multiplier(op)
            io_time = 0.0
            cpu_time = 0.0
            lock_wait = 0.0
            physical = 0.0
            logical = 0.0
            volume_id: str | None = None

            if op.is_leaf and op.table:
                table = self.catalog.table(op.table)
                volume_id = self.catalog.volume_of_table(op.table)
                latency_s = latency_for(op.table) / 1000.0
                table_mult = mults.get(op.table, 1.0)
                if op.op_type is OpType.SEQ_SCAN:
                    logical = table.pages * table_mult * op.loops
                    physical = self.buffer.physical_reads(table, logical, hot=False)
                    io_time = physical * latency_s * SEQ_LATENCY_DISCOUNT
                    scanned = table.row_count * table_mult * op.loops
                else:  # INDEX_SCAN
                    index_height = 2.0
                    rows_per_loop = max(op.est_rows * table_mult, 1.0)
                    heap_pages = min(rows_per_loop, float(table.pages))
                    logical = op.loops * (index_height + heap_pages)
                    physical = self.buffer.physical_reads(table, logical, hot=True)
                    io_time = physical * latency_s
                    scanned = rows_per_loop * op.loops
                cpu_time = scanned * _SCAN_CPU_PER_ROW
                lock_wait = self.locks.wait_time_ms(op.table, at_time, rng) / 1000.0
                actual_rows = op.est_rows * op.loops * table_mult
            else:
                per_row = _CPU_PER_ROW.get(op.op_type, 5e-7)
                n = max(child_rows, 1.0)
                if op.op_type is OpType.SORT:
                    cpu_time = n * math.log2(n + 1.0) * per_row
                else:
                    cpu_time = n * per_row
                actual_rows = op.est_rows * mult
                if op.op_type is OpType.LIMIT:
                    actual_rows = min(actual_rows, op.est_rows)

            cpu_time *= cpu_multiplier
            self_time = noisy(io_time + cpu_time) + lock_wait
            inclusive = children_time + self_time
            rt = OperatorRuntime(
                op_id=op.op_id,
                op_type=op.op_type,
                table=op.table,
                volume_id=volume_id,
                start=start,
                stop=start + inclusive,
                actual_rows=actual_rows,
                est_rows=op.est_rows * op.loops if op.is_leaf else op.est_rows,
                self_time=self_time,
                inclusive_time=inclusive,
                io_time=io_time,
                cpu_time=cpu_time,
                lock_wait=lock_wait,
                physical_reads=physical,
                logical_reads=logical,
            )
            run.operators[op.op_id] = rt
            return rt

        visit(plan, at_time)
        run.db_metrics = self._run_metrics(run, at_time)
        return run

    # ------------------------------------------------------------------
    def _run_metrics(self, run: QueryRun, at_time: float) -> dict[str, float]:
        """Database-level metrics for the run (Figure 4's database family)."""
        ops = run.operators.values()
        blocks_read = sum(rt.physical_reads for rt in ops)
        logical = sum(rt.logical_reads for rt in ops)
        return {
            "blocksRead": blocks_read,
            "bufferHits": max(logical - blocks_read, 0.0),
            "seqScans": float(sum(1 for rt in ops if rt.op_type is OpType.SEQ_SCAN)),
            "indexScans": float(sum(1 for rt in ops if rt.op_type is OpType.INDEX_SCAN)),
            "indexReads": sum(rt.physical_reads for rt in ops if rt.op_type is OpType.INDEX_SCAN),
            "indexFetches": sum(rt.actual_rows for rt in ops if rt.op_type is OpType.INDEX_SCAN),
            "locksHeld": float(self.locks.locks_held(at_time)),
            "lockWaitTime": sum(rt.lock_wait for rt in ops),
            "cpuTime": sum(rt.cpu_time for rt in ops),
            "planRunningTime": run.duration,
        }

    # ------------------------------------------------------------------
    def estimate_volume_load(
        self,
        plan: PlanOperator,
        duration_s: float,
        data_multipliers: Mapping[str, float] | None = None,
    ) -> dict[str, "VolumeLoadLike"]:
        """The read load (IOPS) a run of ``plan`` offers to each volume.

        Used by the environment to close the loop: the query's own I/O
        contributes to disk utilisation alongside any external workloads.
        Returns plain dicts (converted to ``VolumeLoad`` by the caller to
        avoid an import cycle with :mod:`repro.san`).
        """
        duration_s = max(duration_s, 1.0)
        mults = dict(data_multipliers or {})
        reads: dict[str, float] = {}
        seq_reads: dict[str, float] = {}
        for op in plan.leaves():
            if not op.table:
                continue
            table = self.catalog.table(op.table)
            volume = self.catalog.volume_of_table(op.table)
            table_mult = mults.get(op.table, 1.0)
            if op.op_type is OpType.SEQ_SCAN:
                physical = self.buffer.physical_reads(
                    table, table.pages * table_mult * op.loops, hot=False
                )
                seq_reads[volume] = seq_reads.get(volume, 0.0) + physical
            else:
                rows_per_loop = max(op.est_rows * table_mult, 1.0)
                heap_pages = min(rows_per_loop, float(table.pages))
                physical = self.buffer.physical_reads(
                    table, op.loops * (2.0 + heap_pages), hot=True
                )
            reads[volume] = reads.get(volume, 0.0) + physical
        loads: dict[str, dict] = {}
        for volume, total in reads.items():
            seq = seq_reads.get(volume, 0.0)
            loads[volume] = {
                "read_iops": total / duration_s,
                "write_iops": 0.0,
                "sequential_fraction": min(seq / total, 1.0) if total > 0 else 0.0,
            }
        return loads


#: Loose structural type for estimate_volume_load results.
VolumeLoadLike = dict
