"""TPC-H schema and statistics at a configurable scale factor.

The paper's testbed runs TPC-H on PostgreSQL with tables spread over two
volumes.  Figure 1 pins the layout we reproduce by default:

* ``supplier`` lives on volume **V1** (its two plan leaves O8/O22 are the
  operators hit by the scenario-1 contention),
* ``part``, ``partsupp``, ``nation``, ``region`` (and the rest of the schema)
  live on **V2** — "most of the data is on V2".
"""

from __future__ import annotations

from .catalog import Catalog, Column, Index, Table, Tablespace

__all__ = ["build_tpch_catalog", "TPCH_BASE_ROWS", "DEFAULT_LAYOUT"]

#: Base row counts at scale factor 1 (per the TPC-H specification).
TPCH_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Average row widths in bytes (approximate, per the spec's column types).
_ROW_WIDTHS = {
    "region": 120,
    "nation": 110,
    "supplier": 144,
    "customer": 164,
    "part": 155,
    "partsupp": 144,
    "orders": 110,
    "lineitem": 112,
}

#: Default tablespace→volume layout reproducing Figure 1.
DEFAULT_LAYOUT = {
    "ts_supplier": "V1",
    "ts_main": "V2",
}

#: Which tablespace each table uses under the default layout.
_TABLE_SPACES = {
    "supplier": "ts_supplier",
    "region": "ts_main",
    "nation": "ts_main",
    "customer": "ts_main",
    "part": "ts_main",
    "partsupp": "ts_main",
    "orders": "ts_main",
    "lineitem": "ts_main",
}


def _scaled(base: int, scale: float) -> int:
    if base in (5, 25):  # region and nation do not scale
        return base
    return max(int(base * scale), 1)


def build_tpch_catalog(
    scale: float = 1.0,
    layout: dict[str, str] | None = None,
    include_big_tables: bool = False,
) -> Catalog:
    """Build the TPC-H catalog.

    ``layout`` maps tablespace names to volume ids (defaults to the Figure-1
    placement).  ``include_big_tables`` adds customer/orders/lineitem, which
    Q2 does not need; the default keeps the working set at Q2's five tables
    so simulations stay fast.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    layout = dict(DEFAULT_LAYOUT if layout is None else layout)
    catalog = Catalog()
    for ts_name, volume_id in layout.items():
        catalog.add_tablespace(Tablespace(name=ts_name, volume_id=volume_id))

    tables = ["region", "nation", "supplier", "part", "partsupp"]
    if include_big_tables:
        tables += ["customer", "orders", "lineitem"]

    for name in tables:
        rows = _scaled(TPCH_BASE_ROWS[name], scale)
        catalog.add_table(
            Table(
                name=name,
                row_count=rows,
                row_width=_ROW_WIDTHS[name],
                tablespace=_TABLE_SPACES[name],
                columns=_columns_for(name, rows),
            )
        )

    for index in _default_indexes():
        if index.table in tables:
            catalog.create_index(index)
    return catalog


def _columns_for(name: str, rows: int) -> dict[str, Column]:
    """Columns with NDVs good enough for selectivity estimation."""
    cols: dict[str, tuple[int, int]] = {
        "region": {"r_regionkey": (5, 4), "r_name": (5, 12)},
        "nation": {"n_nationkey": (25, 4), "n_name": (25, 12), "n_regionkey": (5, 4)},
        "supplier": {
            "s_suppkey": (rows, 4),
            "s_name": (rows, 18),
            "s_nationkey": (25, 4),
            "s_acctbal": (max(rows // 10, 1), 8),
        },
        "part": {
            "p_partkey": (rows, 4),
            "p_mfgr": (5, 14),
            "p_type": (150, 16),
            "p_size": (50, 4),
        },
        "partsupp": {
            "ps_partkey": (max(rows // 4, 1), 4),
            "ps_suppkey": (max(rows // 80, 1), 4),
            "ps_supplycost": (max(rows // 8, 1), 8),
        },
        "customer": {
            "c_custkey": (rows, 4),
            "c_nationkey": (25, 4),
            "c_mktsegment": (5, 10),
        },
        "orders": {
            "o_orderkey": (rows, 4),
            "o_custkey": (max(rows // 10, 1), 4),
            "o_orderdate": (2406, 4),
        },
        "lineitem": {
            "l_orderkey": (max(rows // 4, 1), 4),
            "l_partkey": (max(rows // 30, 1), 4),
            "l_suppkey": (max(rows // 600, 1), 4),
            "l_shipdate": (2526, 4),
        },
    }[name]
    return {
        cname: Column(name=cname, ndv=ndv, avg_width=width)
        for cname, (ndv, width) in cols.items()
    }


def _default_indexes() -> list[Index]:
    return [
        Index(name="pk_region", table="region", column="r_regionkey", unique=True),
        Index(name="pk_nation", table="nation", column="n_nationkey", unique=True),
        Index(name="pk_supplier", table="supplier", column="s_suppkey", unique=True),
        Index(name="ix_supplier_nation", table="supplier", column="s_nationkey"),
        Index(name="pk_part", table="part", column="p_partkey", unique=True),
        Index(name="ix_part_size", table="part", column="p_size"),
        Index(name="ix_partsupp_partkey", table="partsupp", column="ps_partkey"),
        Index(name="ix_partsupp_suppkey", table="partsupp", column="ps_suppkey"),
        Index(name="pk_customer", table="customer", column="c_custkey", unique=True),
        Index(name="pk_orders", table="orders", column="o_orderkey", unique=True),
        Index(name="ix_lineitem_orderkey", table="lineitem", column="l_orderkey"),
    ]
