"""Canonical metric names per Figure 4's four families.

The collector emits (a reasonable subset of) these names; the Figure-4 bench
verifies coverage of all four families.  Names are camelCase to match the
storage metrics used in Table 2 (``writeIO``, ``writeTime``).
"""

from __future__ import annotations

__all__ = [
    "DATABASE_METRICS",
    "SERVER_METRICS",
    "NETWORK_METRICS",
    "STORAGE_METRICS",
    "METRIC_FAMILIES",
]

DATABASE_METRICS = [
    "operatorStartStopTimes",
    "recordCounts",
    "planRunningTime",
    "locksHeld",
    "lockWaitTime",
    "blocksRead",
    "bufferHits",
    "indexScans",
    "indexReads",
    "indexFetches",
    "seqScans",
]

SERVER_METRICS = [
    "cpuUsagePct",
    "cpuUsageMhz",
    "processes",
    "threads",
    "handles",
    "heapMemoryUsageKb",
    "physicalMemoryUsagePct",
    "kernelMemoryKb",
    "memorySwappedKb",
    "reservedMemoryCapacityKb",
]

NETWORK_METRICS = [
    "bytesTransmitted",
    "bytesReceived",
    "packetsTransmitted",
    "packetsReceived",
    "lipCount",
    "nosCount",
    "errorFrames",
    "dumpedFrames",
    "linkFailures",
    "crcErrors",
    "addressErrors",
]

STORAGE_METRICS = [
    "bytesRead",
    "bytesWritten",
    "readIO",
    "writeIO",
    "readTime",
    "writeTime",
    "physicalStorageReadOps",
    "physicalStorageWriteOps",
    "seqReadRequests",
    "seqWriteRequests",
    "totalIOs",
]

METRIC_FAMILIES = {
    "database": DATABASE_METRICS,
    "server": SERVER_METRICS,
    "network": NETWORK_METRICS,
    "storage": STORAGE_METRICS,
}
