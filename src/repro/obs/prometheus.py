"""Prometheus text exposition (format version 0.0.4) for the registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` raw dump as the
plain-text scrape format Prometheus ingests: ``# TYPE`` headers, sanitised
metric names under the ``repro_`` namespace, escaped label values, and full
cumulative-``le`` histogram series (``_bucket``/``_sum``/``_count``) from
the registry's raw bucket counts — the JSON snapshot's percentile summaries
are *not* scrape-valid, which is why this module reads ``dump_raw()``.

Two dotted-name prefixes become labels instead of name components, so
per-entity series aggregate the way PromQL expects:

* ``worker.<pid>.rest``     → ``repro_rest{worker="<pid>"}``
* ``serve.tenant.<id>.rest`` → ``repro_rest{tenant="<id>"}``

Everything else keeps its dotted name, dots-to-underscores.  Output is
sorted (family name, then label set) so scrapes are diff-stable.
"""

from __future__ import annotations

import re
from typing import Any

from . import metrics as obs_metrics

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The exposition content type Prometheus scrapers negotiate.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: dotted prefix → label key minted from the next dotted component.
_LABEL_PREFIXES = (("worker.", "worker"), ("serve.tenant.", "tenant"))


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Peel a labelled prefix off a dotted metric name, if present."""
    for prefix, label in _LABEL_PREFIXES:
        if name.startswith(prefix):
            rest = name[len(prefix):]
            value, sep, metric = rest.partition(".")
            if sep and value and metric:
                return metric, {label: value}
    return name, {}


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Family:
    """One exposition family: a type header plus its sample lines."""

    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.samples: list[tuple[str, str]] = []

    def render(self) -> list[str]:
        # Insertion order is already deterministic (sorted source names) and
        # preserves ascending-``le`` bucket order, which lexical sorting of
        # sample lines would scramble ("+Inf", "10" vs "2.5").
        lines = [f"# TYPE {self.name} {self.kind}"]
        lines.extend(f"{sample} {value}" for sample, value in self.samples)
        return lines


def render_prometheus(snapshot: dict | None = None, *, namespace: str = "repro") -> str:
    """Render a registry raw dump (default: the live registry) as 0.0.4 text."""
    if snapshot is None:
        snapshot = obs_metrics.registry().dump_raw()
    families: dict[str, _Family] = {}

    def family(dotted: str, kind: str) -> tuple[_Family, dict[str, str]]:
        metric, labels = _split_labels(dotted)
        name = _sanitize(f"{namespace}_{metric}")
        entry = families.get(name)
        if entry is None:
            entry = families.setdefault(name, _Family(name, kind))
        return entry, labels

    for dotted, value in sorted((snapshot.get("counters") or {}).items()):
        entry, labels = family(dotted, "counter")
        entry.samples.append((entry.name + _labels_text(labels), _fmt(value)))
    for dotted, value in sorted((snapshot.get("gauges") or {}).items()):
        entry, labels = family(dotted, "gauge")
        entry.samples.append((entry.name + _labels_text(labels), _fmt(value)))
    for dotted, dump in sorted((snapshot.get("histograms") or {}).items()):
        entry, labels = family(dotted, "histogram")
        _histogram_samples(entry, labels, dump)

    lines: list[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_samples(
    entry: _Family, labels: dict[str, str], dump: dict[str, Any]
) -> None:
    bounds = list(dump.get("bounds") or ())
    counts = list(dump.get("counts") or ())
    total = int(dump.get("count", 0))
    cumulative = 0
    for i, bound in enumerate(bounds):
        cumulative += int(counts[i]) if i < len(counts) else 0
        bucket_labels = dict(labels)
        bucket_labels["le"] = _fmt(bound)
        entry.samples.append(
            (f"{entry.name}_bucket{_labels_text(bucket_labels)}", str(cumulative))
        )
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    entry.samples.append(
        (f"{entry.name}_bucket{_labels_text(inf_labels)}", str(total))
    )
    entry.samples.append(
        (f"{entry.name}_sum{_labels_text(labels)}", _fmt(dump.get("sum", 0.0)))
    )
    entry.samples.append((f"{entry.name}_count{_labels_text(labels)}", str(total)))
