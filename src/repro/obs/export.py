"""Read back trace journals: tables, Chrome trace JSON, critical paths.

Everything in this module operates on the **sidecar** ``obs/`` directory a
``repro watch --state-dir`` run leaves next to its checkpoint — the
``traces`` keyspace of finished spans and the ``obs_metrics`` keyspace of
periodic registry snapshots.  It is strictly offline analysis: nothing
here is imported by the simulation or resume path.

Three consumers:

* ``repro trace`` (table) — per-name duration summaries via
  :func:`summarize`;
* ``repro trace --chrome out.json`` — :func:`chrome_trace` emits Chrome
  trace-event JSON (the ``[{"ph": "X", ...}]`` format), loadable directly
  in Perfetto / ``chrome://tracing``, one timeline row per environment;
* ``repro trace --critical-path`` — :func:`critical_path` explains each
  root span (an ``iteration`` or ``tick``) by its direct children: how
  much of the root's wall time is covered by named child spans, what the
  slowest phases were, and the fleet-wide attribution ranking.

Storage imports stay inside functions so ``import repro.obs`` (which the
runtime does on its hot path) never drags the storage layer in.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

__all__ = [
    "OBS_DIR",
    "load_spans",
    "load_metric_snapshots",
    "summarize",
    "chrome_trace",
    "critical_path",
]

#: Subdirectory of a watch state dir holding the observability sidecar
#: backend.  Kept out of the checkpoint: the resume path never opens it.
OBS_DIR = "obs"

#: Span names treated as per-tick roots for critical-path analysis.
ROOT_SPANS = ("iteration", "tick")


def _obs_root(state_dir: str | pathlib.Path) -> pathlib.Path | None:
    root = pathlib.Path(state_dir) / OBS_DIR
    return root if root.is_dir() else None


def load_spans(state_dir: str | pathlib.Path) -> list[dict]:
    """All journalled span records under ``state_dir``, by wall start.

    Returns ``[]`` when the state dir has no observability sidecar (the
    run was executed without ``--stats``/``REPRO_OBS``).
    """
    root = _obs_root(state_dir)
    if root is None:
        return []
    from ..storage import keyspaces as _keyspaces
    from ..storage.jsonl import JsonlBackend

    backend = JsonlBackend(root)
    try:
        spans = list(backend.scan(_keyspaces.TRACES))
    finally:
        backend.close()
    spans.sort(key=lambda s: s.get("wall_start", 0.0))
    return spans


def load_metric_snapshots(state_dir: str | pathlib.Path) -> list[dict]:
    """All periodic metrics snapshots under ``state_dir``, in sim order."""
    root = _obs_root(state_dir)
    if root is None:
        return []
    from ..storage import keyspaces as _keyspaces
    from ..storage.jsonl import JsonlBackend

    backend = JsonlBackend(root)
    try:
        snaps = list(backend.scan(_keyspaces.OBS_METRICS))
    finally:
        backend.close()
    snaps.sort(key=lambda s: s.get("t", 0.0))
    return snaps


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


def summarize(spans: Iterable[dict]) -> dict[str, dict]:
    """Per-span-name duration summary (count/total/mean/p95/max), sorted
    by total wall time descending — the ``repro trace`` table body."""
    groups: dict[str, list[float]] = {}
    for span in spans:
        groups.setdefault(span["name"], []).append(float(span.get("wall_dur", 0.0)))
    out: dict[str, dict] = {}
    for name, durs in groups.items():
        durs.sort()
        total = sum(durs)
        count = len(durs)
        out[name] = {
            "count": count,
            "total_s": total,
            "mean_ms": total / count * 1000.0,
            "p50_ms": durs[count // 2] * 1000.0,
            "p95_ms": durs[min(count - 1, int(0.95 * count))] * 1000.0,
            "max_ms": durs[-1] * 1000.0,
        }
    return dict(
        sorted(out.items(), key=lambda item: item[1]["total_s"], reverse=True)
    )


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def chrome_trace(spans: Iterable[dict]) -> dict:
    """Chrome trace-event JSON object (``{"traceEvents": [...]}``).

    Complete ``"ph": "X"`` events, timestamps in microseconds relative to
    the earliest span, one ``tid`` per environment (named via thread-name
    metadata events) so Perfetto lays the fleet out as parallel tracks.
    """
    spans = list(spans)
    if not spans:
        return {"traceEvents": []}
    t0 = min(float(s.get("wall_start", 0.0)) for s in spans)
    envs = sorted({s["k"] for s in spans if s.get("k")})
    tid_of = {env: i + 1 for i, env in enumerate(envs)}

    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "supervisor"},
        }
    ]
    for env, tid in tid_of.items():
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"env:{env}"},
            }
        )
    for span in spans:
        args: dict[str, Any] = {"span_id": span["span_id"]}
        if span.get("t") is not None:
            args["sim_t"] = span["t"]
        args.update(span.get("attrs", {}))
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid_of.get(span.get("k"), 0),
                "ts": (float(span.get("wall_start", 0.0)) - t0) * 1e6,
                "dur": float(span.get("wall_dur", 0.0)) * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[dict], path: str | pathlib.Path) -> int:
    """Write :func:`chrome_trace` output to ``path``; return event count."""
    payload = chrome_trace(spans)
    pathlib.Path(path).write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------


def _merged_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of half-open intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    covered += cur_end - cur_start
    return covered


def critical_path(
    spans: Iterable[dict], *, roots: tuple[str, ...] = ROOT_SPANS
) -> dict:
    """Attribute root-span wall time to named child phases.

    Every span named in ``roots`` (an ``iteration`` in the barrier-free
    drive loop, a ``tick`` in the barriered one) is explained by its
    direct children: child intervals are clipped to the root, their union
    gives *coverage* (how much of the tick's wall time named spans account
    for — the acceptance bar is ≥95%), and per-name sums give the
    attribution ranking.  The slowest roots are returned with their child
    chain in wall order — the per-tick critical path.
    """
    spans = list(spans)
    by_parent: dict[str, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent:
            by_parent.setdefault(parent, []).append(span)

    root_reports: list[dict] = []
    total_root = 0.0
    total_covered = 0.0
    by_name: dict[str, float] = {}

    for root in spans:
        if root["name"] not in roots:
            continue
        r_start = float(root.get("wall_start", 0.0))
        r_dur = float(root.get("wall_dur", 0.0))
        r_end = r_start + r_dur
        children = by_parent.get(root["span_id"], [])
        intervals: list[tuple[float, float]] = []
        phases: list[dict] = []
        for child in sorted(children, key=lambda s: s.get("wall_start", 0.0)):
            c_start = max(r_start, float(child.get("wall_start", 0.0)))
            c_end = min(
                r_end,
                float(child.get("wall_start", 0.0))
                + float(child.get("wall_dur", 0.0)),
            )
            if c_end <= c_start:
                continue
            clipped = c_end - c_start
            intervals.append((c_start, c_end))
            by_name[child["name"]] = by_name.get(child["name"], 0.0) + clipped
            phases.append(
                {"name": child["name"], "wall_ms": clipped * 1000.0}
            )
        covered = _merged_length(intervals)
        total_root += r_dur
        total_covered += covered
        root_reports.append(
            {
                "name": root["name"],
                "span_id": root["span_id"],
                "env": root.get("k"),
                "sim_t": root.get("t"),
                "wall_ms": r_dur * 1000.0,
                "covered_ms": covered * 1000.0,
                "coverage": (covered / r_dur) if r_dur > 0 else 1.0,
                "phases": phases,
            }
        )

    root_reports.sort(key=lambda r: r["wall_ms"], reverse=True)
    return {
        "roots": len(root_reports),
        "total_wall_s": total_root,
        "covered_wall_s": total_covered,
        "coverage": (total_covered / total_root) if total_root > 0 else 1.0,
        "by_name": dict(
            sorted(by_name.items(), key=lambda item: item[1], reverse=True)
        ),
        "slowest": root_reports[:10],
    }
