"""The observability wall clock and the subsystem's master switch.

This module is the **one** place in the tree allowed to read a monotonic
wall clock.  Everything the simulation does runs on simulated time — the
determinism lint (:mod:`repro.devtools.lint`) bans wall-clock reads in
simulation-facing packages, and the ``obs-discipline`` checker bans calls
to :func:`wall_clock` anywhere outside ``repro/obs/`` — so instrumented
code measures wall durations exclusively through the span/metric helpers,
which funnel through here.  That keeps the allowlist auditable: one module,
one function, and a byte-for-byte reproducible simulation on either side
of it.

The master switch lives here too (the lowest layer of ``repro.obs``, so
:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` can both import it
without cycles): observability is **off by default** and zero-cost when
off — every public helper checks :func:`is_enabled` first and returns a
shared no-op.  Turn it on per process with :func:`enable` (what ``repro
watch --stats`` does), or per environment with ``REPRO_OBS=1`` /
``REPRO_PROFILE=1``.
"""

from __future__ import annotations

import os
import time

__all__ = ["wall_clock", "is_enabled", "enable", "disable", "reset"]

_ENV_FLAG = "REPRO_OBS"
_PROFILE_FLAG = "REPRO_PROFILE"

_forced: bool | None = None


def wall_clock() -> float:
    """Monotonic wall seconds (the tree's only sanctioned wall-clock read).

    Spans and ``timed()`` histograms subtract two of these; the absolute
    value is meaningless across processes and never enters a simulation,
    a detector, or a checkpoint.
    """
    return time.perf_counter()


def is_enabled() -> bool:
    """True when tracing + metrics are collecting.

    Forced state (:func:`enable`/:func:`disable`) wins; otherwise the
    ``REPRO_OBS`` or ``REPRO_PROFILE`` environment variables opt in.
    """
    if _forced is not None:
        return _forced
    return (
        os.environ.get(_ENV_FLAG, "") not in ("", "0", "false")
        or os.environ.get(_PROFILE_FLAG, "") not in ("", "0", "false")
    )


def enable() -> None:
    """Force observability on for this process (``watch --stats``, tests)."""
    global _forced
    _forced = True


def disable() -> None:
    """Force observability off, overriding the environment (tests)."""
    global _forced
    _forced = False


def reset() -> None:
    """Drop any forced state; the environment variables decide again."""
    global _forced
    _forced = None
