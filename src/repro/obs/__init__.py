"""repro.obs — self-observability: tracing, metrics, and profiling.

The system that diagnoses simulated storage fleets from low-level
telemetry now collects its own: simulation-aware spans
(:mod:`~repro.obs.trace`), a process-wide metrics registry
(:mod:`~repro.obs.metrics`), and benchmark profiling hooks
(:mod:`~repro.obs.profile`), all journalled as **sidecar** data that the
checkpoint/resume path never reads.

Off by default and zero-cost when off: every helper checks
:func:`is_enabled` and returns a shared no-op.  Turn it on with
``repro watch --stats``, ``REPRO_OBS=1``, or ``REPRO_PROFILE=1``.

Instrumenting code::

    from ..obs import span, metrics as obs_metrics

    with span("advance", env=name, sim_t=clock_s):
        ...
    obs_metrics.inc("detectors.fires", len(detections))

Wall-clock reads live *only* in :mod:`repro.obs.clock`; the
``obs-discipline`` lint checker rejects them anywhere else.
"""

from . import clock, export, metrics, profile, prometheus, trace, worker
from .clock import disable, enable, is_enabled, wall_clock
from .export import (
    OBS_DIR,
    chrome_trace,
    critical_path,
    load_metric_snapshots,
    load_spans,
    summarize,
)
from .metrics import (
    MetricsRegistry,
    add_gauge,
    inc,
    loop_lag_probe,
    observe,
    registry,
    set_gauge,
    timed,
)
from .profile import profile_payload, profiling_enabled
from .prometheus import render_prometheus
from .trace import Span, Tracer, current_span, span, tracer, wrap_task
from .worker import context_payload, worker_span

__all__ = [
    "clock",
    "trace",
    "metrics",
    "profile",
    "prometheus",
    "worker",
    "export",
    "context_payload",
    "worker_span",
    "render_prometheus",
    "loop_lag_probe",
    "wall_clock",
    "is_enabled",
    "enable",
    "disable",
    "span",
    "current_span",
    "wrap_task",
    "tracer",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "registry",
    "inc",
    "set_gauge",
    "add_gauge",
    "observe",
    "timed",
    "profile_payload",
    "profiling_enabled",
    "OBS_DIR",
    "load_spans",
    "load_metric_snapshots",
    "summarize",
    "chrome_trace",
    "critical_path",
]
