"""Profiling hooks: attach span/metric evidence to benchmark artifacts.

``REPRO_PROFILE=1`` turns the whole observability stack on (the clock
module treats it as an enable flag) and benchmarks call
:func:`profile_payload` at the end of a run to capture per-span duration
histograms plus a metrics snapshot.  The benchmark harness
(``benchmarks/conftest.py``) embeds the payload in the machine-readable
``BENCH_*.json`` next to the throughput headline, so a scaling claim
ships with per-stage evidence ("advance p95 fell, diagnose p95 didn't")
instead of a single number.
"""

from __future__ import annotations

import os

from .clock import _PROFILE_FLAG, is_enabled
from .metrics import registry
from .trace import tracer

__all__ = ["profiling_enabled", "profile_payload"]


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` asks benchmarks to attach profiles."""
    return os.environ.get(_PROFILE_FLAG, "") not in ("", "0", "false")


def profile_payload() -> dict:
    """Everything a benchmark wants to embed: span histograms + metrics.

    Shape::

        {"enabled": bool,
         "spans": {name: {count, total_s, mean_ms, p50_ms, p95_ms, max_ms}},
         "metrics": {"counters": ..., "gauges": ..., "histograms": ...}}
    """
    return {
        "enabled": is_enabled(),
        "spans": tracer().aggregate(),
        "metrics": registry().snapshot(),
    }
