"""Simulation-aware tracing: lightweight spans over both clocks.

A *span* brackets one unit of work — an environment's advance chunk, a
diagnosis-pipeline module run, a storage append, a correlation watermark
advance — and records **both** clocks: the simulated time the work belongs
to (``sim_t``, supplied by the instrument site) and the wall-clock duration
it actually took (measured through :func:`repro.obs.clock.wall_clock`, the
tree's one allowlisted monotonic read).  Spans nest through a
:class:`contextvars.ContextVar`, so the current span follows ``async``
task switches for free; :func:`wrap_task` carries it across the one place
context does *not* flow automatically — the thread hop into
:class:`repro.runtime.WorkerPool` — so a pipeline run on a pool thread is
parented under the supervisor iteration that submitted it.

Spans are **write-only sidecar data**: finished spans append to the
``traces`` keyspace of whatever sink the process attached (a state dir's
``obs/`` backend under ``repro watch``), and nothing in the simulation,
detection, or checkpoint path ever reads them back — the byte-for-byte
kill/resume guarantee cannot see them.  ``repro trace`` renders the
journal as a table, Chrome trace-event JSON, or a per-tick critical path
(:mod:`repro.obs.export`).

Zero-cost when disabled: :func:`span` returns a shared no-op object
without touching the tracer, so an instrumented hot loop pays one function
call and one flag check per site.

Usage::

    from repro.obs import span

    with span("advance", env=watched.name, sim_t=watched.advanced_s):
        detections = await scheduler.call(watched.advance, step)
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from .clock import is_enabled, wall_clock

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "context",
    "wrap_task",
    "tracer",
]

#: The innermost open span of the current task/thread (context-local).
_current: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

#: Process-wide span id source.  Deterministic (a counter, never wall time
#: or randomness) so trace journals are stable artifacts of execution order.
_ids = itertools.count(1)

#: Reservoir size per span name for duration percentiles (profiling).
_RESERVOIR = 512


class _NoopSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Span:
    """One bracketed unit of work; use as a context manager only.

    (The ``obs-discipline`` lint checker enforces the ``with`` form — a
    manually opened span that is never closed would hold the context for
    the rest of the task and misparent every later span.)
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "sim_t",
        "attrs",
        "wall_start",
        "wall_end",
        "_token",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        *,
        sim_t: float | None = None,
        parent: "Span | None" = None,
        **attrs: Any,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = f"s{next(_ids)}"
        self.parent_id = parent.span_id if parent is not None else None
        self.trace_id = parent.trace_id if parent is not None else self.span_id
        # Simulated time inherits from the parent when the site has no
        # better anchor (a storage append during an advance belongs to the
        # advance's simulated instant).
        if sim_t is None and parent is not None:
            sim_t = parent.sim_t
        self.sim_t = sim_t
        self.attrs = attrs
        self.wall_start = 0.0
        self.wall_end = 0.0
        self._token = None

    @property
    def wall_dur(self) -> float:
        return max(0.0, self.wall_end - self.wall_start)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (e.g. a result count)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        self.wall_start = wall_clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.wall_end = wall_clock()
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)

    def to_record(self) -> dict:
        """The journal form: a storage record on the simulated timeline."""
        record: dict = {
            "t": self.sim_t if self.sim_t is not None else 0.0,
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "wall_start": self.wall_start,
            "wall_dur": self.wall_dur,
        }
        env = self.attrs.get("env")
        if env is not None:
            record["k"] = env
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        extra = {k: v for k, v in self.attrs.items() if k != "env"}
        if extra:
            record["attrs"] = extra
        return record


class _Agg:
    """Per-name duration aggregate feeding ``REPRO_PROFILE`` histograms."""

    __slots__ = ("count", "total_s", "max_s", "recent")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.recent: list[float] = []

    def note(self, dur: float) -> None:
        self.count += 1
        self.total_s += dur
        if dur > self.max_s:
            self.max_s = dur
        if len(self.recent) >= _RESERVOIR:
            # Keep a sliding window of the most recent durations; enough
            # for p50/p95 without unbounded memory on long watches.
            self.recent.pop(0)
        self.recent.append(dur)

    def summary(self) -> dict:
        ordered = sorted(self.recent)

        def pct(q: float) -> float:
            if not ordered:
                return 0.0
            return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_ms": (self.total_s / self.count * 1000.0) if self.count else 0.0,
            "p50_ms": pct(0.50) * 1000.0,
            "p95_ms": pct(0.95) * 1000.0,
            "max_ms": self.max_s * 1000.0,
        }


class Tracer:
    """Process-wide span factory, aggregator, and journal writer.

    Finished spans are (a) folded into per-name duration aggregates (what
    ``REPRO_PROFILE=1`` attaches to benchmark JSON) and (b) appended to the
    attached sink's ``traces`` keyspace, if any.  Both under one lock, per
    the ``# guarded-by`` discipline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._agg: dict[str, _Agg] = {}
        # guarded-by: _lock
        self._finished = 0
        self._sink: Any | None = None
        self._keyspace: str | None = None

    # -- span construction ----------------------------------------------
    def span(self, name: str, *, sim_t: float | None = None, **attrs: Any) -> Span:
        return Span(self, name, sim_t=sim_t, parent=_current.get(), **attrs)

    def _finish(self, span: Span) -> None:
        sink = self._sink
        with self._lock:
            agg = self._agg.get(span.name)
            if agg is None:
                agg = self._agg.setdefault(span.name, _Agg())
            agg.note(span.wall_dur)
            self._finished += 1
        if sink is not None:
            sink.append(self._keyspace, span.to_record())

    def ingest(self, records: list[dict]) -> None:
        """Merge already-finished span records (worker-process buffers).

        The cross-process half of tracing: spans opened in pool workers come
        back as journal-form records (pid-scoped ids, parent rebased wall
        starts) and enter the same aggregate fold and sidecar keyspace as
        locally finished spans — one coherent trace across backends.
        """
        if not records:
            return
        sink = self._sink
        with self._lock:
            for record in records:
                name = str(record.get("name", "?"))
                agg = self._agg.get(name)
                if agg is None:
                    agg = self._agg.setdefault(name, _Agg())
                agg.note(float(record.get("wall_dur", 0.0)))
                self._finished += 1
        if sink is not None:
            for record in records:
                sink.append(self._keyspace, record)

    # -- sink -------------------------------------------------------------
    def set_sink(self, backend: Any | None, *, keyspace: str | None = None) -> None:
        """Attach (or detach, with None) the journal backend for spans."""
        if backend is None:
            self._sink = None
            self._keyspace = None
            return
        if keyspace is None:
            from ..storage import keyspaces as _keyspaces  # lazy: keep obs import-light

            keyspace = _keyspaces.TRACES
        self._keyspace = keyspace
        self._sink = backend

    @property
    def sink(self) -> Any | None:
        return self._sink

    # -- inspection -------------------------------------------------------
    def finished(self) -> int:
        with self._lock:
            return self._finished

    def aggregate(self) -> dict[str, dict]:
        """Per-name duration summaries (count, total, p50/p95/max)."""
        with self._lock:
            return {name: agg.summary() for name, agg in sorted(self._agg.items())}

    def reset(self) -> None:
        """Drop aggregates and detach the sink (tests)."""
        with self._lock:
            self._agg = {}
            self._finished = 0
        self._sink = None
        self._keyspace = None


_tracer = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer (one per process, like the metrics registry)."""
    return _tracer


def span(name: str, *, sim_t: float | None = None, **attrs: Any):
    """Open a span (context manager).  No-op unless observability is on.

    ``sim_t`` anchors the span on the simulated timeline; ``env=`` becomes
    the journal record's routing key; other keywords become attributes.
    """
    if not is_enabled():
        return _NOOP
    return _tracer.span(name, sim_t=sim_t, **attrs)


def current_span() -> Span | None:
    """The innermost open span of this task/thread, if any."""
    return _current.get()


@contextmanager
def context(parent: Span | None) -> Iterator[None]:
    """Install ``parent`` as the current span (cross-thread hand-off)."""
    token = _current.set(parent)
    try:
        yield
    finally:
        _current.reset(token)


def wrap_task(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Carry the caller's current span across a worker-pool thread hop.

    contextvars flow into asyncio tasks automatically but **not** into
    executor threads; :meth:`repro.runtime.WorkerPool.submit` wraps every
    task through here so span parentage survives the hop.  Returns ``fn``
    unchanged when observability is off or no span is open — the common
    case stays allocation-free.
    """
    if not is_enabled():
        return fn
    parent = _current.get()
    if parent is None:
        return fn

    def task(*args: Any, **kwargs: Any) -> Any:
        with context(parent):
            return fn(*args, **kwargs)

    return task
