"""Process-wide metrics registry: counters, gauges, histograms.

The numeric side of ``repro.obs``: where spans answer "where did this tick's
wall time go", metrics answer "how deep is the pool queue, how many
diagnoses are in flight, how fast are storage appends" — cheap instruments
updated from hot paths and *snapshotted* periodically into the sidecar
``obs_metrics`` keyspace (and rendered live by ``repro watch --stats``).

Three instrument kinds, all lock-guarded per the PR-6 discipline
(``# guarded-by`` annotations, enforced statically by ``repro lint`` and
dynamically by the sanitizer):

* :class:`Counter` — monotonically increasing totals (tasks completed,
  detector fires, bytes written);
* :class:`Gauge` — last-write-wins levels (queue depth, watermark lag,
  in-flight diagnoses, via ``add()`` for up/down tracking);
* :class:`Histogram` — fixed exponential latency buckets with count/sum/
  min/max and bucket-estimated percentiles (scheduler task latency,
  storage op latency).

Call sites use the module-level helpers (:func:`inc`, :func:`set_gauge`,
:func:`add_gauge`, :func:`observe`, :func:`timed`), which check
:func:`repro.obs.clock.is_enabled` first — one flag test per call when the
subsystem is off, no instrument allocation, no locking.  Wall-clock reads
stay inside this module (``timed`` brackets with
:func:`~repro.obs.clock.wall_clock`), keeping instrumented packages clean
under the determinism lint.
"""

from __future__ import annotations

import threading
from typing import Any

from .clock import is_enabled, wall_clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "inc",
    "set_gauge",
    "add_gauge",
    "observe",
    "timed",
    "loop_lag_probe",
]

#: Default histogram bucket upper bounds (seconds): half-decade exponential
#: from 100µs to 10s — spans the range from a MemoryBackend append to a
#: straggler diagnosis pipeline.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Replace the cumulative total — the cross-process fold path only.

        A parent-side mirror of a worker counter tracks the worker's
        *reported* cumulative value (which legitimately restarts from zero
        when the worker does); normal call sites must use :meth:`inc`.
        """
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level; ``add()`` supports up/down tracking."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket latency histogram (seconds) with summary stats.

    Percentiles are bucket-estimated: the reported quantile is the upper
    bound of the bucket the rank falls in, clamped to the observed max —
    coarse but allocation-free and mergeable across snapshots.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        # guarded-by: _lock
        self._count = 0
        # guarded-by: _lock
        self._sum = 0.0
        # guarded-by: _lock
        self._min = float("inf")
        # guarded-by: _lock
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def percentile(self, q: float) -> float:
        with self._lock:
            count = self._count
            counts = list(self._counts)
            observed_max = self._max
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for i, bucket in enumerate(counts):
            cumulative += bucket
            if cumulative >= rank:
                bound = self.bounds[i] if i < len(self.bounds) else observed_max
                return min(bound, observed_max)
        return observed_max

    def summary(self) -> dict:
        with self._lock:
            count = self._count
            total = self._sum
            low = self._min if count else 0.0
            high = self._max
        return {
            "count": count,
            "sum_s": total,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "min_ms": low * 1000.0,
            "max_ms": high * 1000.0,
            "p50_ms": self.percentile(0.50) * 1000.0,
            "p95_ms": self.percentile(0.95) * 1000.0,
        }

    def dump(self) -> dict:
        """Raw, mergeable state: bucket counts, not derived percentiles.

        This is what crosses the process boundary and what the Prometheus
        renderer turns into cumulative-``le`` series — both need the actual
        buckets, which :meth:`summary` deliberately hides.
        """
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max,
            }

    def load(self, state: dict) -> None:
        """Replace this histogram's state with a :meth:`dump` (fold path)."""
        counts = [int(c) for c in state.get("counts") or ()]
        count = int(state.get("count", 0))
        with self._lock:
            if len(counts) == len(self._counts):
                self._counts = counts
            self._count = count
            self._sum = float(state.get("sum", 0.0))
            self._min = float(state.get("min", 0.0)) if count else float("inf")
            self._max = float(state.get("max", 0.0))


class MetricsRegistry:
    """Name → instrument, get-or-create, one per process.

    Instruments are identified by dotted names (``pool.queue_depth``,
    ``storage.jsonl.append_s``); the registry is the single source every
    renderer (``watch --stats``), snapshotter, and query path reads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._counters: dict[str, Counter] = {}
        # guarded-by: _lock
        self._gauges: dict[str, Gauge] = {}
        # guarded-by: _lock
        self._histograms: dict[str, Histogram] = {}
        self._worker_lock = threading.Lock()
        # guarded-by: _worker_lock
        self._worker_dumps: dict[str, dict] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters.setdefault(name, Counter(name))
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges.setdefault(name, Gauge(name))
            return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms.setdefault(name, Histogram(name, bounds))
            return instrument

    # -- snapshotting -----------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able point-in-time view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def dump_raw(self) -> dict:
        """Raw instrument values — histogram buckets included, not summaries.

        The mergeable/exposable twin of :meth:`snapshot`: what workers ship
        across the process boundary and what the Prometheus renderer reads.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.dump() for name, h in sorted(histograms.items())
            },
        }

    def fold_worker(self, pid: int | str, dump: dict) -> None:
        """Fold one worker-registry dump into this (parent) registry.

        Every worker instrument lands twice: verbatim under
        ``worker.<pid>.<name>`` (cumulative as reported, so re-folding the
        same dump is idempotent) and summed across workers under
        ``workers.<name>`` — the fleet-level aggregate ``repro metrics``,
        ``watch --stats``, and the serve endpoints surface.
        """
        if not isinstance(dump, dict):
            return
        prefix = f"worker.{pid}."
        for name, value in (dump.get("counters") or {}).items():
            self.counter(prefix + name).set_total(float(value))
        for name, value in (dump.get("gauges") or {}).items():
            self.gauge(prefix + name).set(float(value))
        for name, state in (dump.get("histograms") or {}).items():
            bounds = tuple(state.get("bounds") or DEFAULT_BUCKETS)
            self.histogram(prefix + name, bounds).load(state)
        with self._worker_lock:
            self._worker_dumps[str(pid)] = dump
            dumps = list(self._worker_dumps.values())
        totals: dict[str, float] = {}
        levels: dict[str, float] = {}
        merged: dict[str, dict] = {}
        for worker_dump in dumps:
            for name, value in (worker_dump.get("counters") or {}).items():
                totals[name] = totals.get(name, 0.0) + float(value)
            for name, value in (worker_dump.get("gauges") or {}).items():
                levels[name] = levels.get(name, 0.0) + float(value)
            for name, state in (worker_dump.get("histograms") or {}).items():
                agg = merged.get(name)
                if agg is None:
                    merged[name] = {
                        "bounds": list(state.get("bounds") or DEFAULT_BUCKETS),
                        "counts": [int(c) for c in state.get("counts") or ()],
                        "count": int(state.get("count", 0)),
                        "sum": float(state.get("sum", 0.0)),
                        "min": float(state.get("min", 0.0)),
                        "max": float(state.get("max", 0.0)),
                    }
                    continue
                counts = [int(c) for c in state.get("counts") or ()]
                if len(counts) == len(agg["counts"]):
                    agg["counts"] = [a + b for a, b in zip(agg["counts"], counts)]
                agg["count"] += int(state.get("count", 0))
                agg["sum"] += float(state.get("sum", 0.0))
                if state.get("count"):
                    low = float(state.get("min", 0.0))
                    agg["min"] = min(agg["min"], low) if agg["count"] else low
                agg["max"] = max(agg["max"], float(state.get("max", 0.0)))
        for name, value in totals.items():
            self.counter(f"workers.{name}").set_total(value)
        for name, value in levels.items():
            self.gauge(f"workers.{name}").set(value)
        for name, state in merged.items():
            self.histogram(f"workers.{name}", tuple(state["bounds"])).load(state)

    def snapshot_to(
        self, backend: Any, sim_t: float, *, keyspace: str | None = None
    ) -> dict:
        """Append one snapshot record (simulated timestamp) to a backend."""
        if keyspace is None:
            from ..storage import keyspaces as _keyspaces  # lazy: keep obs import-light

            keyspace = _keyspaces.OBS_METRICS
        snap = self.snapshot()
        backend.append(keyspace, {"t": sim_t, "metrics": snap})
        return snap

    def reset(self) -> None:
        """Drop every instrument (tests / fresh benchmark legs)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
        with self._worker_lock:
            self._worker_dumps = {}


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (one per process, like the tracer)."""
    return _registry


# ---------------------------------------------------------------------------
# hot-path helpers: one enabled-flag check, then the instrument op
# ---------------------------------------------------------------------------


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter (no-op while observability is off)."""
    if not is_enabled():
        return
    _registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge level (no-op while observability is off)."""
    if not is_enabled():
        return
    _registry.gauge(name).set(value)


def add_gauge(name: str, delta: float) -> None:
    """Move a gauge up/down (no-op while observability is off)."""
    if not is_enabled():
        return
    _registry.gauge(name).add(delta)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while observability is off)."""
    if not is_enabled():
        return
    _registry.histogram(name).observe(value)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = wall_clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(max(0.0, wall_clock() - self._start))


def timed(name: str):
    """Context manager recording the block's wall duration to a histogram.

    The wall-clock reads happen *here*, inside ``repro.obs`` — instrumented
    packages never touch the clock themselves, which is what keeps them
    clean under the determinism lint and the ``obs-discipline`` checker.
    """
    if not is_enabled():
        return _NULL_TIMER
    return _Timer(_registry.histogram(name))


async def loop_lag_probe(
    interval_s: float = 0.25,
    *,
    gauge: str = "scheduler.loop_lag_s",
    cycles: int | None = None,
) -> None:
    """Event-loop-lag probe: measure ``asyncio.sleep`` overshoot forever.

    A coroutine the :class:`~repro.runtime.scheduler.Scheduler` spawns when
    observability is on.  Each cycle sleeps ``interval_s`` and records how
    late the loop woke it — the coordination loop's scheduling lag, the
    number that climbs when a blocking call sneaks onto the loop.  Lives in
    ``repro.obs`` so the wall-clock reads stay inside the allowlisted
    package.  ``cycles`` bounds the probe for tests; the default runs until
    the owning loop cancels it.
    """
    import asyncio

    remaining = cycles
    while remaining is None or remaining > 0:
        if remaining is not None:
            remaining -= 1
        start = wall_clock()
        await asyncio.sleep(interval_s)
        lag = max(0.0, (wall_clock() - start) - interval_s)
        if is_enabled():
            _registry.gauge(gauge).set(lag)
            _registry.histogram(f"{gauge}.hist").observe(lag)
