"""Cross-process observability: the worker half of distributed tracing.

:class:`~repro.runtime.procpool.ProcessWorkerPool` runs advance/diagnose/
bundle work in worker processes, where the parent's span ``ContextVar`` and
process-wide registry do not exist.  This module carries observability
across that seam in both directions:

* **Outbound** (parent side): :func:`context_payload` serialises the active
  span context — trace id, parent span id, simulated instant — into a small
  JSON document the pool tucks into the task envelope.  Nothing is sent
  while observability is off, so the obs-off wire bytes are unchanged.
* **Worker side**: :func:`task_scope` installs the incoming context and
  opens a root ``worker.task`` span; :func:`worker_span` opens buffered
  child spans under it.  Worker spans never block the task path and never
  touch a sidecar — they append to a bounded in-process buffer with
  pid-scoped span ids (``w<pid>s<n>``, collision-free against the parent's
  ``s<n>`` counter).  The ``obs-discipline`` lint checker enforces that
  worker-side modules emit spans *only* through this API.
* **Inbound** (parent side): the buffer — plus a periodic registry dump —
  ships back piggy-backed on task results (and through the bounded
  :func:`flush_task`); :func:`ingest` merges spans into the parent tracer's
  sidecar with worker pid annotations and folds metrics into the parent
  registry under ``worker.<pid>.*``.  Ingest deduplicates by span id, so
  merging the same buffer twice (piggy-back racing a flush, a resumed
  parent re-collecting) is idempotent.

Worker wall clocks are not comparable across processes (``perf_counter``
origins differ), so drained spans carry their *age* relative to the drain
instant and the parent rebases them onto its own clock at ingest — the
rendered timeline is coherent to within one result-queue hop.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from . import metrics as obs_metrics
from . import trace as obs_trace
from .clock import enable as _obs_enable
from .clock import is_enabled, wall_clock

__all__ = [
    "context_payload",
    "task_scope",
    "worker_span",
    "drain",
    "flush_task",
    "ping",
    "ingest",
    "reset",
]

#: Incoming task context: ``{"trace_id", "span_id", "sim_t", "affinity"}``
#: (any key may be absent).  ``None`` means the envelope carried no context
#: and worker spans stay inert.
_ctx: ContextVar[dict | None] = ContextVar("repro_obs_worker_ctx", default=None)

#: The innermost open *worker* span of the current task.
_wcurrent: ContextVar["_WorkerSpan | None"] = ContextVar(
    "repro_obs_worker_span", default=None
)

#: Per-process worker span id source; combined with the pid at record time
#: (``w<pid>s<n>``) so ids never collide with the parent or other workers.
_wids = itertools.count(1)

#: Bounded span buffer: one task's spans normally drain with its result;
#: the cap only matters for failed tasks, whose spans wait for the next
#: drain or periodic flush.
_BUFFER_LIMIT = 4096

#: Piggy-back a full registry dump on every Nth drain (the periodic flush
#: always includes one) — span freshness per task, metric freshness bounded.
_METRICS_EVERY = 8

_buffer_lock = threading.Lock()
_buffer: list[dict] = []
_dropped = 0
_drains = 0

#: Parent-side dedup of already-merged worker span ids (bounded LRU).
_SEEN_LIMIT = 8192
_ingest_lock = threading.Lock()
_seen: "OrderedDict[str, None]" = OrderedDict()


# -- parent side: outbound context ------------------------------------------


def context_payload() -> dict | None:
    """Serialise the active span context for a procpool task envelope.

    Returns ``None`` while observability is off — the pool then ships the
    raw payload, byte-identical to an obs-off run.  With observability on
    but no open span, an empty context still rides along so the worker
    activates its buffered instruments.
    """
    if not is_enabled():
        return None
    parent = obs_trace.current_span()
    if parent is None:
        return {}
    ctx: dict = {"trace_id": parent.trace_id, "span_id": parent.span_id}
    if parent.sim_t is not None:
        ctx["sim_t"] = parent.sim_t
    return ctx


# -- worker side: buffered spans ---------------------------------------------


class _WorkerSpan:
    """A buffered span: records into the worker buffer, never a sidecar."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "sim_t",
        "attrs",
        "wall_start",
        "_token",
    )

    def __init__(self, name: str, *, sim_t: float | None = None, **attrs: Any) -> None:
        self.name = name
        self.span_id = f"w{os.getpid()}s{next(_wids)}"
        parent = _wcurrent.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
            if sim_t is None:
                sim_t = parent.sim_t
        else:
            ctx = _ctx.get() or {}
            self.parent_id = ctx.get("span_id")
            self.trace_id = ctx.get("trace_id") or self.span_id
            if sim_t is None:
                sim_t = ctx.get("sim_t")
        self.sim_t = sim_t
        self.attrs = {k: v for k, v in attrs.items() if v is not None}
        self.wall_start = 0.0
        self._token = None

    def annotate(self, **attrs: Any) -> "_WorkerSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_WorkerSpan":
        self._token = _wcurrent.set(self)
        self.wall_start = wall_clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        wall_end = wall_clock()
        if self._token is not None:
            _wcurrent.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        record: dict = {
            "t": self.sim_t if self.sim_t is not None else 0.0,
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "wall_start": self.wall_start,
            "wall_dur": max(0.0, wall_end - self.wall_start),
        }
        env = self.attrs.get("env")
        if env is not None:
            record["k"] = env
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        extra = {k: v for k, v in self.attrs.items() if k != "env"}
        if extra:
            record["attrs"] = extra
        global _dropped
        with _buffer_lock:
            if len(_buffer) >= _BUFFER_LIMIT:
                _dropped += 1
            else:
                _buffer.append(record)


def worker_span(name: str, *, sim_t: float | None = None, **attrs: Any):
    """Open a buffered worker span; inert without an installed task context.

    The worker-side counterpart of :func:`repro.obs.trace.span`: same
    ``with`` discipline, but finished spans land in the process-local
    buffer for the parent to merge — never in a sink.
    """
    if _ctx.get() is None:
        return obs_trace._NOOP
    return _WorkerSpan(name, sim_t=sim_t, **attrs)


@contextmanager
def task_scope(ctx: dict | None, *, task: str | None = None) -> Iterator[Any]:
    """Install an incoming task context and bracket the task in a root span.

    The pool's worker loop wraps every context-carrying task through here.
    The first context a worker sees also switches its process-local
    observability on, so registry instruments (counters/timers in task
    bodies) record regardless of the pool start method.
    """
    if ctx is None:
        yield None
        return
    if not is_enabled():
        _obs_enable()
    token = _ctx.set(ctx)
    try:
        root = _WorkerSpan("worker.task", task=task, affinity=ctx.get("affinity"))
        with root:
            yield root
    finally:
        _ctx.reset(token)


def drain(*, include_metrics: bool | None = None) -> dict | None:
    """Swap the span buffer out and package it for the return path.

    Spans carry ``rel_start`` — their age at drain time — instead of a raw
    ``wall_start``, since worker and parent monotonic clocks share no
    origin.  Every :data:`_METRICS_EVERY`-th drain (and every explicit
    flush) attaches a full registry dump.  Returns ``None`` when there is
    nothing to ship, so the result envelope stays untouched.
    """
    global _dropped, _drains
    with _buffer_lock:
        spans = _buffer[:]
        _buffer.clear()
        dropped, _dropped = _dropped, 0
        _drains += 1
        nth = _drains
    if include_metrics is None:
        include_metrics = nth % _METRICS_EVERY == 1
    now = wall_clock()
    for record in spans:
        record["rel_start"] = max(0.0, now - record.pop("wall_start", now))
    payload: dict = {"pid": os.getpid(), "spans": spans}
    if dropped:
        payload["dropped"] = dropped
    if include_metrics and is_enabled():
        payload["metrics"] = obs_metrics.registry().dump_raw()
    if not spans and "metrics" not in payload:
        return None
    return payload


# -- procpool tasks ----------------------------------------------------------


def flush_task(payload: dict) -> dict:
    """Procpool task: drain this worker's obs buffer (bounded periodic flush).

    Dispatched to every worker by ``ProcessWorkerPool.collect_obs`` so spans
    and metrics stranded by failed tasks (or quiet periods) still reach the
    parent sidecar.  Returns the drain payload directly — or ``{}``.
    """
    return drain(include_metrics=True) or {}


def ping(payload: dict) -> dict:
    """Procpool task: a calibrated no-op for envelope-overhead benchmarks.

    Burns ``payload["spin"]`` trivial iterations inside a worker span, so an
    obs-on/obs-off A/B over this task prices exactly the distributed-tracing
    envelope (context out, span buffer + metrics dump back).
    """
    n = int(payload.get("spin", 0))
    with worker_span("worker.ping", spin=n):
        acc = 0
        for i in range(n):
            acc += i & 7
    return {"ok": True, "acc": acc}


# -- parent side: inbound merge ----------------------------------------------


def ingest(payload: dict | None, *, worker: int | None = None) -> int:
    """Merge one worker obs payload into the parent tracer and registry.

    Spans are rebased onto the parent clock (``rel_start`` ages against
    "now"), annotated with the worker pid (and parent-side worker index),
    deduplicated by span id, and appended through the tracer — so they land
    in the same sidecar keyspace as parent spans.  Metrics dumps fold under
    ``worker.<pid>.*`` plus ``workers.*`` fleet aggregates.  Returns the
    number of spans merged; never raises into the task path.
    """
    if not payload:
        return 0
    pid = payload.get("pid")
    spans = payload.get("spans") or []
    fresh: list[dict] = []
    with _ingest_lock:
        for record in spans:
            span_id = record.get("span_id")
            if span_id is None or span_id in _seen:
                continue
            _seen[span_id] = None
            while len(_seen) > _SEEN_LIMIT:
                _seen.popitem(last=False)
            fresh.append(record)
    if fresh:
        now = wall_clock()
        rebased = []
        for record in fresh:
            record = dict(record)
            age = record.pop("rel_start", 0.0)
            record["wall_start"] = max(0.0, now - float(age))
            attrs = dict(record.get("attrs") or {})
            if pid is not None:
                attrs.setdefault("pid", pid)
            if worker is not None:
                attrs.setdefault("worker", worker)
            if attrs:
                record["attrs"] = attrs
            rebased.append(record)
        obs_trace.tracer().ingest(rebased)
    dropped = payload.get("dropped")
    if dropped:
        obs_metrics.registry().counter("obs.worker_spans_dropped").inc(float(dropped))
    dump = payload.get("metrics")
    if dump and pid is not None:
        obs_metrics.registry().fold_worker(pid, dump)
    return len(fresh)


def reset() -> None:
    """Drop worker buffers and the parent-side dedup state (tests)."""
    global _dropped, _drains
    with _buffer_lock:
        _buffer.clear()
        _dropped = 0
        _drains = 0
    with _ingest_lock:
        _seen.clear()
