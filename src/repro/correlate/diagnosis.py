"""Shared-root-cause drill-down: one fleet report instead of N tickets.

When a :class:`~repro.correlate.CorrelationEngine` opens a
:class:`~repro.correlate.FleetIncident`, the question changes from "why is
this query slow?" to "which *shared* component is degrading all of these
environments at once?".  This module answers it with a cross-bundle
dependency-path analysis:

1. per member, the candidate shared components are checked against the
   dependency paths of the member's watched query
   (:func:`repro.core.dependency.compute_dependency_paths` via the APG) —
   a shared component that cannot affect a member's operators cannot be its
   cause;
2. per member, each on-path candidate is scored by how strongly its metrics
   co-move with the query's per-run duration
   (:func:`repro.stats.correlation.pearson` over per-run metric window
   means) — the same evidence rule Module DA applies inside one
   environment, lifted to the component level;
3. across members, candidates are ranked by **coverage × correlation**:
   the fraction of the component's attached membership that is affected
   *and* has it on-path, times the mean correlation strength among those
   members.  A pool shared by exactly the six degraded environments beats
   the switch shared by all eight, because two attached-but-healthy members
   are evidence against the switch.

The per-member scoring is also a registered
:class:`~repro.core.registry.DiagnosisModule` (``"SC"``), so a single
environment's pipeline can rank shared SAN components on demand
(``default_pipeline(extra_modules=["SC"])``); the fleet drill-down reuses the
same scoring across every member bundle and emits one
:class:`FleetDiagnosis` — which the supervisor attaches to the fleet
incident and to every member incident it short-circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.apg import COMPONENT_METRICS, build_apg
from ..core.modules.base import DiagnosisContext, ModuleResult
from ..core.registry import register_module
from ..stats.correlation import pearson

if TYPE_CHECKING:  # pragma: no cover
    from ..lab.environment import DiagnosisBundle
    from .engine import FleetIncident

__all__ = [
    "ComponentEvidence",
    "SharedCause",
    "FleetDiagnosis",
    "rank_components_for_member",
    "diagnose_fleet_incident",
    "SCResult",
    "SharedComponentRankModule",
]

#: Cause-id prefix fleet reports use, so member tickets resolved by a fleet
#: report are distinguishable from per-member symptom-database matches.
SHARED_CAUSE_PREFIX = "shared-component"


@dataclass(frozen=True)
class ComponentEvidence:
    """One member's evidence for one candidate shared component."""

    component_id: str
    env: str
    on_path: bool
    best_metric: str | None
    correlation: float  # |pearson| of the best metric vs run duration


@dataclass(frozen=True)
class SharedCause:
    """A candidate shared component, scored across the affected members."""

    component_id: str
    attached: tuple[str, ...]
    affected: tuple[str, ...]
    on_path: tuple[str, ...]
    coverage: float
    mean_correlation: float
    score: float
    evidence: tuple[ComponentEvidence, ...] = ()

    @property
    def cause_id(self) -> str:
        return f"{SHARED_CAUSE_PREFIX}:{self.component_id}"

    def describe(self) -> str:
        return (
            f"{self.cause_id}: coverage {self.coverage:.2f} "
            f"({len(self.on_path)}/{len(self.attached)} attached members), "
            f"correlation {self.mean_correlation:.2f}, score {self.score:.2f}"
        )


@dataclass
class FleetDiagnosis:
    """The fleet-level report: shared components ranked across members."""

    fleet_id: str
    causes: list[SharedCause] = field(default_factory=list)

    @property
    def top_cause(self) -> SharedCause | None:
        return self.causes[0] if self.causes else None

    def to_report_data(self) -> dict:
        """Serialised form attached to fleet *and* short-circuited member
        incidents (``causes[0]["cause_id"]`` is what ticket surfaces read)."""
        return {
            "kind": "fleet",
            "fleet_id": self.fleet_id,
            "causes": [
                {
                    "cause_id": cause.cause_id,
                    "component_id": cause.component_id,
                    "score": round(cause.score, 4),
                    "coverage": round(cause.coverage, 4),
                    "correlation": round(cause.mean_correlation, 4),
                    "attached": list(cause.attached),
                    "affected": list(cause.affected),
                    "on_path": list(cause.on_path),
                }
                for cause in self.causes
            ],
        }

    def render(self) -> str:
        lines = [f"fleet diagnosis {self.fleet_id}: shared-component ranking"]
        for rank, cause in enumerate(self.causes, start=1):
            lines.append(f"  {rank}. {cause.describe()}")
        return "\n".join(lines)


def _metrics_for(bundle: "DiagnosisBundle", component_id: str) -> list[str]:
    try:
        ctype = bundle.topology.get(component_id).ctype.value
    except Exception:
        return []
    return COMPONENT_METRICS.get(ctype, [])


def rank_components_for_member(
    bundle: "DiagnosisBundle",
    query_name: str,
    candidates: Sequence[str],
    *,
    env: str = "-",
    until: float | None = None,
) -> list[ComponentEvidence]:
    """Score candidate components against one member's run history.

    For each candidate: is it on any operator's dependency path, and how
    strongly does its best metric (per-run window mean) co-move with the
    query's per-run duration?  Labels are not required — durations alone
    carry the degradation signal — so the drill-down works even for members
    whose SLO detector has not labelled runs on both sides yet.

    ``until`` restricts the evidence to runs that *completed* by that
    simulated time.  The fleet drill-down passes the correlator's cutoff
    (group open + drill-down delay): every member clock has provably passed
    it, so the analysis reads identical data no matter how far ahead other
    members have raced — which keeps the fleet report deterministic.
    """
    if until is not None:
        runs = [
            r
            for r in bundle.stores.runs.runs(query_name)
            if r.end_time <= until
        ]
        if not runs:
            raise ValueError(
                f"no completed runs for {query_name!r} by t={until:g}"
            )
        apg = build_apg(bundle, query_name, plan=runs[-1].plan, runs=runs)
    else:
        apg = build_apg(bundle, query_name)
    on_path = apg.component_ids()
    runs = apg.runs
    durations = [run.duration for run in runs]
    metrics_store = bundle.stores.metrics
    evidence: list[ComponentEvidence] = []
    for component_id in candidates:
        if component_id not in on_path:
            evidence.append(
                ComponentEvidence(component_id, env, False, None, 0.0)
            )
            continue
        best_metric, best_corr = None, 0.0
        for metric in _metrics_for(bundle, component_id):
            paired_means, paired_durations = [], []
            for run, duration in zip(runs, durations):
                mean = metrics_store.window_mean(
                    component_id, metric, run.start_time, run.end_time
                )
                if mean is not None:
                    paired_means.append(mean)
                    paired_durations.append(duration)
            if len(paired_means) < 2:
                continue
            coeff = abs(pearson(paired_means, paired_durations))
            if coeff > best_corr:
                best_metric, best_corr = metric, coeff
        evidence.append(
            ComponentEvidence(component_id, env, True, best_metric, best_corr)
        )
    return evidence


def diagnose_fleet_incident(
    incident: "FleetIncident",
    bundles: Mapping[str, "DiagnosisBundle"],
    query_names: Mapping[str, str],
    membership: Mapping[str, Sequence[str]],
    *,
    until: float | None = None,
    locks: Mapping[str, object] | None = None,
) -> FleetDiagnosis:
    """Cross-bundle dependency-path analysis for one fleet incident.

    ``bundles`` / ``query_names`` map member environment names to their
    snapshotted :class:`DiagnosisBundle` and watched query; ``membership``
    is the engine's shared-component map.  Every shared component with at
    least one affected attached member is a candidate; the ranking is
    coverage × mean correlation as described in the module docstring.
    ``until`` is the deterministic evidence cutoff (see
    :func:`rank_components_for_member`).  ``locks`` optionally maps a member
    to a context manager held while *its* evidence is read — the supervisor
    passes each member environment's advance lock, since a sibling may be
    mid-chunk on a pool thread while the drill-down reads its stores.
    """
    from contextlib import nullcontext

    affected = [env for env in incident.member_envs if env in bundles]
    candidates = sorted(
        component
        for component, attached in membership.items()
        if set(attached) & set(affected)
    )
    locks = locks or {}
    per_member: dict[str, list[ComponentEvidence]] = {}
    for env in affected:
        try:
            with locks.get(env) or nullcontext():
                per_member[env] = rank_components_for_member(
                    bundles[env], query_names[env], candidates, env=env, until=until
                )
        except ValueError:
            # A member with no completed runs by the cutoff contributes no
            # evidence (it still counts as affected; it just cannot vote).
            per_member[env] = [
                ComponentEvidence(component, env, False, None, 0.0)
                for component in candidates
            ]

    causes: list[SharedCause] = []
    for component in candidates:
        attached = tuple(membership[component])
        affected_attached = tuple(e for e in affected if e in attached)
        evidence = tuple(
            ev
            for env in affected_attached
            for ev in per_member[env]
            if ev.component_id == component
        )
        contributing = tuple(ev.env for ev in evidence if ev.on_path)
        corrs = [ev.correlation for ev in evidence if ev.on_path]
        mean_corr = sum(corrs) / len(corrs) if corrs else 0.0
        coverage = len(contributing) / len(attached) if attached else 0.0
        causes.append(
            SharedCause(
                component_id=component,
                attached=attached,
                affected=affected_attached,
                on_path=contributing,
                coverage=coverage,
                mean_correlation=mean_corr,
                score=coverage * mean_corr,
                evidence=evidence,
            )
        )
    causes.sort(key=lambda c: (-c.score, -c.coverage, c.component_id))
    return FleetDiagnosis(fleet_id=incident.fleet_id, causes=causes)


# ---------------------------------------------------------------------------
# The per-member scoring as a pluggable pipeline module
# ---------------------------------------------------------------------------
@dataclass
class SCResult(ModuleResult):
    """Outcome of the shared-component ranking module."""

    evidence: list[ComponentEvidence] = field(default_factory=list)

    def ranked(self) -> list[ComponentEvidence]:
        return sorted(
            self.evidence, key=lambda ev: (-ev.correlation, ev.component_id)
        )


@register_module
class SharedComponentRankModule:
    """Module SC — rank shared SAN components for one environment.

    A drill-down module (not part of the default Figure-2 workflow): given a
    set of candidate shared components (pools, switches, hosts), it scores
    each by dependency-path membership and metric-vs-duration correlation —
    the per-member half of :func:`diagnose_fleet_incident`.  With no
    explicit candidates it considers every pool and switch in the member's
    topology.

    Plug it into a pipeline with
    ``default_pipeline(extra_modules=[SharedComponentRankModule(["P1"])])``.
    """

    name = "SC"
    requires = ()

    def __init__(self, candidates: Sequence[str] | None = None) -> None:
        self.candidates = tuple(candidates) if candidates is not None else None

    def run(self, ctx: DiagnosisContext) -> SCResult:
        topology = ctx.bundle.topology
        candidates = self.candidates
        if candidates is None:
            candidates = tuple(
                sorted(
                    c.component_id
                    for c in list(topology.pools) + list(topology.switches)
                )
            )
        evidence = rank_components_for_member(
            ctx.bundle, ctx.query_name, candidates
        )
        on_path = [ev for ev in evidence if ev.on_path]
        result = SCResult(
            module=self.name,
            summary=(
                f"{len(on_path)} of {len(evidence)} candidate shared components "
                "on the query's dependency paths"
            ),
            evidence=list(evidence),
        )
        ctx.set_result(result)
        return result
