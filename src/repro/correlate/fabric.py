"""Shared fabrics: fleets of environments over common SAN infrastructure.

The paper's testbed "is part of a production SAN environment, with the
interconnecting fabric and storage controllers being shared by other
applications".  A :class:`SharedFabric` makes that sharing a first-class,
fleet-level object: it builds multiple :class:`~repro.lab.Environment`\\ s
whose testbeds reference common SAN components (same pool, same switch, same
host), and a fault injected **on a shared component propagates to every
attached environment** — which is exactly the co-occurrence signature the
correlation engine groups on.

Each member environment remains its own deterministic simulation (per-member
seed, clock, detectors); what is shared is *identity*: the fabric declares
which component ids name the same physical pool/switch across members, and
shared-fault injection replays the component's fault into every attached
member's simulator.  The membership map (:meth:`SharedFabric.membership`)
is what a :class:`~repro.correlate.CorrelationEngine` keys its candidate
groups by, and what the drill-down ranks against.

Three canonical fleet scenarios ship here:

* :func:`fabric_shared_pool_saturation` — a misconfigured volume lands on a
  pool shared by 6 of 8 members; one :class:`FleetIncident` with the pool as
  top-ranked cause is the correct outcome;
* :func:`fabric_shared_switch_degradation` — the core fabric switch degrades
  under every member at once; no per-member symptoms database entry exists,
  so only the fleet-level view names the switch;
* :func:`fabric_coincidental_independent_faults` — the control: members
  share infrastructure but suffer *independent*, well-separated faults, and
  the engine must merge **nothing**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from ..lab.faults import FaultInjector
from ..lab.scenarios import Scenario, scenario_healthy
from .engine import CorrelationEngine, FleetIncidentStore

if TYPE_CHECKING:  # pragma: no cover
    from ..stream.supervisor import FleetSupervisor, WatchedEnvironment

__all__ = [
    "SharedComponentSpec",
    "SharedFault",
    "SharedFabric",
    "SharedFabricBuilder",
    "fabric_shared_pool_saturation",
    "fabric_shared_switch_degradation",
    "fabric_coincidental_independent_faults",
]

#: A shared-fault application: called as ``apply(injector, at)`` against each
#: attached member's fault injector.
FaultApply = Callable[[FaultInjector, float], None]


@dataclass(frozen=True)
class SharedComponentSpec:
    """One physically-shared SAN component and the members attached to it."""

    component_id: str
    kind: str  # "pool" | "switch" | "host" | "subsystem"
    members: tuple[str, ...]


@dataclass(frozen=True)
class SharedFault:
    """A fault on a shared component, replayed into every attached member."""

    component_id: str
    at: float
    apply: FaultApply
    ground_truth: tuple[str, ...] = ()
    description: str = ""


@dataclass
class SharedFabric:
    """A built fleet: member scenarios + the shared-component map."""

    name: str
    description: str
    members: dict[str, Scenario]
    shared: dict[str, SharedComponentSpec]
    faults: tuple[SharedFault, ...] = ()

    def membership(self) -> dict[str, tuple[str, ...]]:
        """Shared component id → attached member names (the engine's key)."""
        return {cid: spec.members for cid, spec in self.shared.items()}

    def attached(self, component_id: str) -> tuple[str, ...]:
        return self.shared[component_id].members

    def components_of(self, member: str) -> tuple[str, ...]:
        return tuple(
            cid for cid, spec in sorted(self.shared.items()) if member in spec.members
        )

    def watch_all(
        self, supervisor: "FleetSupervisor", *, hydration: dict | None = None
    ) -> "list[WatchedEnvironment]":
        """Put every member under supervision (names are member names).

        ``hydration`` is the fabric's registry identity (``{"fleet": ...,
        "hours": ..., "seed": ...}``); each member's spec adds its own name
        so a process-backed supervisor can rebuild the member inside its
        sticky worker (see :mod:`repro.stream.worker`).
        """
        return [
            supervisor.watch_scenario(
                scenario,
                name=name,
                hydration=dict(hydration, env=name) if hydration is not None else None,
            )
            for name, scenario in self.members.items()
        ]

    def correlator(
        self,
        *,
        window_s: float = 3600.0,
        min_members: int = 3,
        min_confidence: float = 0.3,
        store: FleetIncidentStore | None = None,
        state_dir=None,
    ) -> CorrelationEngine:
        """A correlation engine keyed by this fabric's membership."""
        if store is None and state_dir is not None:
            store = FleetIncidentStore.open(state_dir)
        return CorrelationEngine(
            self.membership(),
            window_s=window_s,
            min_members=min_members,
            min_confidence=min_confidence,
            store=store,
        )


class SharedFabricBuilder:
    """Assemble a :class:`SharedFabric`: members, shared components, faults.

    ::

        b = SharedFabricBuilder("shared-pool-saturation")
        for i in range(8):
            b.member(f"env-{i}", scenario_healthy(hours=8.0, seed=100 + i))
        b.share("P1", "pool", *[f"env-{i}" for i in range(6)])
        b.inject(
            "P1",
            at=4 * 3600.0,
            apply=lambda inj, t: inj.san_misconfiguration(at=t, pool_id="P1"),
            ground_truth=("volume-contention-san-misconfig",),
        )
        fabric = b.build()

    ``build()`` wraps each attached member's scenario so its environment
    receives every shared fault of the components it is attached to, and
    patches the member's :class:`~repro.lab.ScenarioInfo` (ground truth +
    fault time) so fleet-table verification still works per member.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._members: dict[str, Scenario] = {}
        self._shared: dict[str, SharedComponentSpec] = {}
        self._faults: list[SharedFault] = []

    def member(self, name: str, scenario: Scenario) -> "SharedFabricBuilder":
        if name in self._members:
            raise ValueError(f"member {name!r} already added")
        self._members[name] = scenario
        return self

    def share(
        self, component_id: str, kind: str, *members: str
    ) -> "SharedFabricBuilder":
        unknown = sorted(set(members) - set(self._members))
        if unknown:
            raise ValueError(f"share({component_id!r}) names unknown members {unknown}")
        if not members:
            raise ValueError(f"share({component_id!r}) needs at least one member")
        self._shared[component_id] = SharedComponentSpec(
            component_id=component_id, kind=kind, members=tuple(members)
        )
        return self

    def inject(
        self,
        component_id: str,
        at: float,
        apply: FaultApply,
        *,
        ground_truth: tuple[str, ...] = (),
        description: str = "",
    ) -> "SharedFabricBuilder":
        if component_id not in self._shared:
            raise ValueError(
                f"inject({component_id!r}) targets a component never share()d"
            )
        self._faults.append(
            SharedFault(
                component_id=component_id,
                at=at,
                apply=apply,
                ground_truth=ground_truth,
                description=description,
            )
        )
        return self

    def build(self) -> SharedFabric:
        members: dict[str, Scenario] = {}
        for name, scenario in self._members.items():
            faults = tuple(
                fault
                for fault in self._faults
                if name in self._shared[fault.component_id].members
            )
            members[name] = self._wrap(name, scenario, faults)
        return SharedFabric(
            name=self.name,
            description=self.description,
            members=members,
            shared=dict(self._shared),
            faults=tuple(self._faults),
        )

    @staticmethod
    def _wrap(
        name: str, scenario: Scenario, faults: tuple[SharedFault, ...]
    ) -> Scenario:
        if not faults:
            return replace(scenario, info=replace(scenario.info, name=name))
        base_build = scenario.build

        def build():
            env = base_build()
            injector = FaultInjector(env)
            for fault in faults:
                fault.apply(injector, fault.at)
            return env

        ground_truth = tuple(
            dict.fromkeys(
                scenario.info.ground_truth
                + tuple(c for fault in faults for c in fault.ground_truth)
            )
        )
        fault_time = min(
            [scenario.info.fault_time] + [fault.at for fault in faults]
        )
        return replace(
            scenario,
            build=build,
            info=replace(
                scenario.info,
                name=name,
                ground_truth=ground_truth,
                fault_time=fault_time,
            ),
        )


# ---------------------------------------------------------------------------
# Canonical fleet scenarios
# ---------------------------------------------------------------------------
def fabric_shared_pool_saturation(
    hours: float = 8.0,
    seed: int = 101,
    n_envs: int = 8,
    attached: int = 6,
    write_iops: float = 300.0,
) -> SharedFabric:
    """A misconfigured volume lands on a pool shared by ``attached`` of
    ``n_envs`` members; the whole attached cohort degrades together.

    The correct fleet outcome: **one** fleet incident grouping all affected
    members, with the shared pool as the top-ranked cause — not
    ``attached`` independent tickets.  The core switch is also declared
    shared (by everyone), so the drill-down has to out-rank it: two
    attached-but-healthy members are evidence against the switch.
    """
    if not 2 <= attached <= n_envs:
        raise ValueError("attached must be in [2, n_envs]")
    fault_t = hours * 3600.0 / 2.0
    names = [f"pool-env-{i:02d}" for i in range(n_envs)]
    builder = SharedFabricBuilder(
        "shared-pool-saturation",
        description=(
            f"misconfigured volume V' lands on pool P1 shared by {attached} of "
            f"{n_envs} environments"
        ),
    )
    for i, name in enumerate(names):
        builder.member(name, scenario_healthy(hours=hours, seed=seed + i))
    builder.share("P1", "pool", *names[:attached])
    builder.share("fcsw-core", "switch", *names)
    builder.inject(
        "P1",
        at=fault_t,
        apply=lambda injector, t: injector.san_misconfiguration(
            at=t, pool_id="P1", write_iops=write_iops, read_iops=60.0
        ),
        ground_truth=("volume-contention-san-misconfig",),
        description="misconfigured volume V' created on the shared pool",
    )
    return builder.build()


def fabric_shared_switch_degradation(
    hours: float = 8.0,
    seed: int = 211,
    n_envs: int = 6,
    extra_latency_ms: float = 3.0,
) -> SharedFabric:
    """The core fabric switch degrades under every member at once.

    No member has a symptoms-database entry for a switch problem — the
    per-member pipeline comes back empty-handed.  Only the fleet view can
    name the cause: every attached member slows simultaneously, and the
    switch's error frames co-move with every member's run durations.  Pool
    P2 is declared shared too (it is on some operators' paths but its
    metrics never move), so the ranking has to earn the switch's top spot.
    """
    fault_t = hours * 3600.0 / 2.0
    names = [f"switch-env-{i:02d}" for i in range(n_envs)]
    builder = SharedFabricBuilder(
        "shared-switch-degradation",
        description=(
            f"core switch fcsw-core degrades; all {n_envs} environments pay "
            "the extra fabric transit latency"
        ),
    )
    for i, name in enumerate(names):
        builder.member(name, scenario_healthy(hours=hours, seed=seed + i))
    builder.share("fcsw-core", "switch", *names)
    builder.share("P2", "pool", *names)
    builder.inject(
        "fcsw-core",
        at=fault_t,
        apply=lambda injector, t: injector.switch_degradation(
            at=t, switch_id="fcsw-core", extra_latency_ms=extra_latency_ms
        ),
        description="congestion/CRC storm on the shared core switch",
    )
    return builder.build()


def fabric_coincidental_independent_faults(
    hours: float = 10.0, seed: int = 307, n_envs: int = 4
) -> SharedFabric:
    """The control: shared infrastructure, *independent* staggered faults.

    Members share a pool and the switch, but their faults are local (a lock
    escalation, a data-property change, a CPU hog) and separated by far more
    than any correlation window.  Each opens its own incident at its own
    time; the engine must merge **zero** groups — co-location alone is not
    correlation.
    """
    if n_envs < 4:
        raise ValueError("the control fabric needs at least 4 members")
    end_t = hours * 3600.0
    names = [f"coincidental-env-{i:02d}" for i in range(n_envs)]
    builder = SharedFabricBuilder(
        "coincidental-independent-faults",
        description=(
            "independent staggered local faults on environments sharing a "
            "pool and switch; nothing may be merged"
        ),
    )

    def local(scenario: Scenario, at: float, apply: FaultApply, *gt: str) -> Scenario:
        base_build = scenario.build

        def build():
            env = base_build()
            apply(FaultInjector(env), at)
            return env

        return replace(
            scenario,
            build=build,
            info=replace(scenario.info, ground_truth=tuple(gt), fault_time=at),
        )

    local_faults: list[tuple[float, FaultApply, tuple[str, ...]]] = [
        (
            0.25 * end_t,
            lambda inj, t: inj.lock_contention(
                at=t, table="supplier", mean_wait_s=2.5, until=end_t
            ),
            ("lock-contention",),
        ),
        (
            0.55 * end_t,
            lambda inj, t: inj.data_property_change(
                at=t, table="partsupp", multiplier=1.5
            ),
            ("data-property-change",),
        ),
        (
            0.85 * end_t,
            lambda inj, t: inj.cpu_saturation(
                at=t, until=end_t, cpu_multiplier=4.0, server_pct=75.0
            ),
            ("cpu-saturation",),
        ),
    ]
    for i, name in enumerate(names):
        scenario = scenario_healthy(hours=hours, seed=seed + i)
        if i < len(local_faults):
            at, apply, gt = local_faults[i]
            scenario = local(scenario, at, apply, *gt)
        builder.member(name, scenario)
    builder.share("P2", "pool", *names)
    builder.share("fcsw-core", "switch", *names)
    return builder.build()
