"""repro.correlate — fleet-wide cross-environment correlation.

The first subsystem whose unit of analysis is the **fleet**, not the
environment.  Environments sharing SAN infrastructure fail together: one
misconfigured shared pool opens N "unrelated" incidents that the
per-environment view diagnoses N times.  This package closes that gap in
three layers:

* **shared fabrics** (:mod:`repro.correlate.fabric`) — build fleets of
  environments over common SAN components, with shared-component fault
  injection propagating to every attached member;
* **the streaming correlation engine** (:mod:`repro.correlate.engine`) —
  consumes the fleet event stream (in-process via
  ``FleetSupervisor(correlator=...)`` or out-of-process by tailing a state
  dir's durable fleet event log), maintains time-windowed co-occurrence of
  incident opens keyed by shared-component membership, and emits durable
  :class:`FleetIncident`\\ s with open → grow → resolve lifecycle;
* **shared-root-cause drill-down** (:mod:`repro.correlate.diagnosis`) —
  cross-bundle dependency-path analysis ranking the shared components, one
  fleet-level report replacing N redundant member diagnoses.

Quickstart::

    from repro.correlate import fabric_shared_pool_saturation
    from repro.stream import FleetSupervisor

    fabric = fabric_shared_pool_saturation(hours=8.0)   # 8 envs, 6 on P1
    engine = fabric.correlator()
    supervisor = FleetSupervisor(correlator=engine)
    fabric.watch_all(supervisor)
    supervisor.run(8 * 3600.0)
    for fleet_incident in engine.fleet_incidents():
        print(fleet_incident.fleet_id, fleet_incident.top_cause_id)
"""

from .diagnosis import (
    ComponentEvidence,
    FleetDiagnosis,
    SCResult,
    SharedCause,
    SharedComponentRankModule,
    diagnose_fleet_incident,
    rank_components_for_member,
)
from .engine import (
    CorrelationEngine,
    FleetIncident,
    FleetIncidentState,
    FleetIncidentStore,
    ticket_top_cause,
)
from .fabric import (
    SharedComponentSpec,
    SharedFabric,
    SharedFabricBuilder,
    SharedFault,
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
    fabric_shared_switch_degradation,
)

__all__ = [
    "CorrelationEngine",
    "FleetIncident",
    "FleetIncidentState",
    "FleetIncidentStore",
    "ticket_top_cause",
    "SharedComponentSpec",
    "SharedFault",
    "SharedFabric",
    "SharedFabricBuilder",
    "fabric_shared_pool_saturation",
    "fabric_shared_switch_degradation",
    "fabric_coincidental_independent_faults",
    "ComponentEvidence",
    "SharedCause",
    "FleetDiagnosis",
    "SCResult",
    "SharedComponentRankModule",
    "diagnose_fleet_incident",
    "rank_components_for_member",
]
