"""The streaming correlation engine: incident opens → fleet incidents.

A fleet whose environments share SAN infrastructure has a failure mode the
per-environment view cannot name: one misconfigured shared pool opens N
"unrelated" incidents that each get diagnosed independently.  The
:class:`CorrelationEngine` watches the fleet event stream for exactly that
signature — **time-windowed co-occurrence of incident opens keyed by
shared-component membership** — and folds correlated waves into one durable
:class:`FleetIncident` (member incidents + suspected shared component +
confidence) instead of N tickets.

Feeding the engine
------------------
Events are the :data:`~repro.stream.FleetEvent` dicts a
:class:`~repro.stream.FleetSupervisor` produces.  Three types matter:

* ``advanced`` — a member's simulated clock moved.  The engine's
  **watermark** is the minimum clock over all attached members; buffered
  opens/resolves are only *processed* once the watermark passes them, in
  global simulated-time order.  This is what makes the engine deterministic:
  however the barrier-free runtime interleaves environments (and however a
  killed run is resumed), the processed sequence — and therefore the journal
  — depends only on simulated times, never on wall-clock arrival order.
* ``incident_opened`` / ``incident_resolved`` — buffered by simulated time;
  folding is **idempotent per incident id**, so the at-least-once delivery
  of a resumed supervisor (or a re-tailed event log) cannot double-count.

The engine can live in-process (``FleetSupervisor(correlator=engine)``) or
out-of-process, tailing the durable fleet event log of a state dir
(:meth:`CorrelationEngine.consume_log`).

Scoring
-------
A candidate group for shared component *C* is the set of unconsumed opens
from environments attached to *C* within one sliding ``window_s``.  It opens
a :class:`FleetIncident` when it reaches ``min_members`` distinct
environments and its confidence clears ``min_confidence``.  Confidence is
conditional co-occurrence against a baseline: each attached member's
historical open rate gives the probability ``p_i = 1 - exp(-rate_i *
window)`` of an open landing in the window *by chance*; with ``k`` of ``n``
attached members firing, ``confidence = (k - Σ p_i) / n`` (clamped to
[0, 1]) — a fleet that opens incidents all the time earns no confidence
from yet another coincidence, while six quiet members firing together is
close to certainty.  When one open is a candidate for several shared
components (a pool *and* the switch above it), the engine keeps a single
group for the best-conditioned component (most firing members, then highest
coverage of its membership).

Lifecycle: **open** (the triggering wave) → **grow** (later opens within the
window join) → **resolve** (every member incident resolved).  Each
transition is journalled through a :class:`FleetIncidentStore` in the
``fleet_incidents`` keyspace, with the same delta/fold design as the
per-environment incident journal; ``state_dict()`` / ``load_state()`` give
the supervisor checkpoint resume parity.
"""

from __future__ import annotations

import copy
import enum
import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..obs import metrics as obs_metrics
from ..obs import span
from ..storage.journal import JournalStore
from ..storage.keyspaces import FLEET_INCIDENTS

if TYPE_CHECKING:  # pragma: no cover
    from ..stream.eventlog import FleetEventLog

__all__ = [
    "FleetIncidentState",
    "FleetIncident",
    "FleetIncidentStore",
    "CorrelationEngine",
    "ticket_top_cause",
]


def ticket_top_cause(ticket: dict) -> str | None:
    """Top-ranked cause id of a fleet-incident ticket (None before the
    drill-down attached a report).  Shared by every rollup surface."""
    causes = (ticket.get("report") or {}).get("causes") or []
    return causes[0]["cause_id"] if causes else None


class FleetIncidentState(enum.Enum):
    OPEN = "open"
    RESOLVED = "resolved"


@dataclass
class FleetIncident:
    """One correlated degradation wave across environments sharing a component."""

    fleet_id: str
    component_id: str
    opened_at: float
    confidence: float
    state: FleetIncidentState = FleetIncidentState.OPEN
    #: Member incidents: ``{"env", "incident_id", "opened_at", "resolved_at"}``.
    members: list[dict] = field(default_factory=list)
    #: Simulated time of the latest member open (the sliding-window anchor).
    last_open_at: float = 0.0
    resolved_at: float | None = None
    #: The fleet-level drill-down report (shared-component ranking), once
    #: :func:`repro.correlate.diagnose_fleet_incident` has run.
    report_data: dict | None = None
    #: Fleet id of the predecessor group this one re-escalated from: the
    #: previous fleet incident on the same shared component resolved less
    #: than one correlation window before this wave opened.  A flapping
    #: shared component reads as one linked chain, not unrelated tickets.
    escalated_from: str | None = None

    @property
    def member_envs(self) -> list[str]:
        """Distinct member environments, in first-open order."""
        seen: list[str] = []
        for member in self.members:
            if member["env"] not in seen:
                seen.append(member["env"])
        return seen

    @property
    def member_incident_ids(self) -> list[str]:
        return [m["incident_id"] for m in self.members]

    @property
    def top_cause_id(self) -> str | None:
        if self.report_data is not None and self.report_data.get("causes"):
            return self.report_data["causes"][0]["cause_id"]
        return None

    def to_dict(self) -> dict:
        return {
            "fleet_id": self.fleet_id,
            "component_id": self.component_id,
            "state": self.state.value,
            "opened_at": self.opened_at,
            "last_open_at": self.last_open_at,
            "resolved_at": self.resolved_at,
            "confidence": self.confidence,
            "members": [dict(m) for m in self.members],
            "report": self.report_data,
            "escalated_from": self.escalated_from,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetIncident":
        return cls(
            fleet_id=data["fleet_id"],
            component_id=data["component_id"],
            opened_at=data["opened_at"],
            confidence=data["confidence"],
            state=FleetIncidentState(data["state"]),
            members=[dict(m) for m in data.get("members", [])],
            last_open_at=data.get("last_open_at", data["opened_at"]),
            resolved_at=data.get("resolved_at"),
            report_data=data.get("report"),
            escalated_from=data.get("escalated_from"),
        )


class FleetIncidentStore(JournalStore):
    """Durable, queryable fleet-incident history over a pluggable backend.

    The fleet-level sibling of :class:`repro.stream.IncidentStore`, sharing
    its :class:`~repro.storage.journal.JournalStore` scaffolding: each
    lifecycle transition is one delta record keyed by fleet-incident id in
    the ``fleet_incidents`` keyspace (``open`` carries the full ticket;
    ``grow`` / ``member_resolved`` / ``resolve`` / ``report`` only what they
    change), folded into a latest-ticket view that :meth:`history` serves
    across restarts — the query surface behind ``repro correlate``.  Folding
    is idempotent, so the duplicate transitions a resumed run deterministically
    re-journals cannot change a ticket.
    """

    KEYSPACE = FLEET_INCIDENTS

    def _fold(self, rec: dict) -> None:
        event = rec["event"]
        if event == "open":
            self._latest[rec["k"]] = copy.deepcopy(rec["incident"])
            return
        ticket = self._latest.get(rec["k"])
        if ticket is None:
            return
        if event == "grow":
            member = rec["member"]
            if member["incident_id"] not in [
                m["incident_id"] for m in ticket["members"]
            ]:
                ticket["members"].append(dict(member))
                ticket["last_open_at"] = rec["t"]
            if "confidence" in rec:
                ticket["confidence"] = rec["confidence"]
        elif event == "member_resolved":
            for member in ticket["members"]:
                if member["incident_id"] == rec["incident_id"]:
                    member["resolved_at"] = rec["resolved_at"]
        elif event == "resolve":
            ticket["state"] = FleetIncidentState.RESOLVED.value
            ticket["resolved_at"] = rec["resolved_at"]
        elif event == "report":
            ticket["report"] = rec["report"]

    # -- writing ---------------------------------------------------------
    def record(self, event: str, incident: FleetIncident, time: float, **extra) -> None:
        rec: dict = {"t": time, "k": incident.fleet_id, "event": event}
        if event == "open":
            rec["incident"] = incident.to_dict()
        elif event == "grow":
            rec["member"] = dict(extra["member"])
            rec["confidence"] = incident.confidence
        elif event == "member_resolved":
            rec["incident_id"] = extra["incident_id"]
            rec["resolved_at"] = extra["resolved_at"]
        elif event == "resolve":
            rec["resolved_at"] = incident.resolved_at
        elif event == "report":
            rec["report"] = incident.report_data
        else:
            raise ValueError(f"unknown fleet-incident event {event!r}")
        self._append(rec)

    # -- queries ---------------------------------------------------------
    def history(
        self,
        *,
        component: str | None = None,
        state: "FleetIncidentState | str | None" = None,
        since: float | None = None,
    ) -> list[dict]:
        """Latest ticket per fleet incident, ordered by open time."""
        wanted = state.value if isinstance(state, FleetIncidentState) else state
        out = [
            ticket
            for ticket in self._tickets()
            if (component is None or ticket["component_id"] == component)
            and (wanted is None or ticket["state"] == wanted)
            and (since is None or ticket["opened_at"] >= since)
        ]
        return sorted(out, key=lambda t: (t["opened_at"], t["fleet_id"]))


class CorrelationEngine:
    """Folds the fleet event stream into :class:`FleetIncident`\\ s.

    ``membership`` maps shared component id → the environment names attached
    to it (a :meth:`repro.correlate.SharedFabric.membership` dict).
    Environments that appear in no membership are ignored: their incidents
    are always *independent* and never delay anything.

    Thread-safety: a single mutex guards :meth:`observe`, the query surface,
    and :meth:`state_dict`, so the supervisor's batched checkpoint flusher
    can snapshot the engine from a pool thread while the coordination loop
    keeps feeding it.
    """

    def __init__(
        self,
        membership: Mapping[str, Sequence[str]],
        *,
        window_s: float = 3600.0,
        min_members: int = 3,
        min_confidence: float = 0.3,
        drilldown_delay_s: float | None = None,
        store: FleetIncidentStore | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if min_members < 2:
            raise ValueError("min_members must be at least 2")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if drilldown_delay_s is not None and drilldown_delay_s < 0:
            raise ValueError("drilldown_delay_s must be non-negative")
        self.membership: dict[str, tuple[str, ...]] = {
            component: tuple(envs) for component, envs in membership.items()
        }
        self.window_s = window_s
        self.min_members = min_members
        self.min_confidence = min_confidence
        #: How long (simulated seconds) after a group opens before it is
        #: surfaced for the drill-down.  The delay buys evidence: by the time
        #: the watermark passes ``opened_at + delay``, every member's store
        #: provably holds the complete post-onset window up to that cutoff,
        #: which makes the drill-down report deterministic.  Defaults to one
        #: correlation window.
        self.drilldown_delay_s = (
            drilldown_delay_s if drilldown_delay_s is not None else window_s
        )
        self.store = store
        self._components_of: dict[str, tuple[str, ...]] = {}
        for component in sorted(self.membership):
            for env in self.membership[component]:
                self._components_of[env] = self._components_of.get(env, ()) + (
                    component,
                )
        #: Simulated clock per attached member; the watermark is their min.
        self._clocks: dict[str, float] = {env: 0.0 for env in self._components_of}
        self._watermark = 0.0
        #: Events awaiting the watermark: {"t", "kind", "env", "incident_id"}.
        self._buffer: list[dict] = []
        #: Incident ids whose open/resolve has been *processed* (idempotence
        #: against the at-least-once delivery of a resumed supervisor).
        self._seen_opens: set[str] = set()
        self._seen_resolves: set[str] = set()
        #: Processed opens not yet consumed by a group: id → (t, env).
        self._pending: dict[str, tuple[float, str]] = {}
        #: Total processed opens per member (the baseline open rate).
        self._open_counts: dict[str, int] = {}
        self._groups: dict[str, FleetIncident] = {}
        self._live_by_component: dict[str, str] = {}
        #: Component → (fleet id, resolved_at) of the most recently resolved
        #: group on it: a successor opening within one window of that resolve
        #: is a **re-escalation** and links back via ``escalated_from``.
        self._recently_resolved: dict[str, tuple[str, float]] = {}
        self._member_group: dict[str, str] = {}
        self._counter = 0
        #: Open groups whose drill-down cutoff the watermark has passed,
        #: awaiting pickup by the caller.  ``_ready_emitted`` is in-memory
        #: only: after a resume, a group still lacking a report is surfaced
        #: again so the drill-down cannot be lost to a kill.
        self._ready: list[FleetIncident] = []
        self._ready_emitted: set[str] = set()
        self._lock = threading.Lock()

    # -- feeding ---------------------------------------------------------
    def observe(self, event: dict) -> list[FleetIncident]:
        """Feed one fleet event; returns fleet incidents ready for drill-down.

        A group is *ready* once the watermark has passed ``opened_at +
        drilldown_delay_s`` and it has no report yet — the caller should run
        :func:`repro.correlate.diagnose_fleet_incident` over the member
        bundles and :meth:`attach_report` the result.
        """
        with self._lock:
            etype = event.get("type")
            if etype == "advanced":
                self._on_advanced(event)
            elif etype == "incident_opened":
                self._buffer_event(event, "open", event.get("opened_at"))
            elif etype == "incident_resolved":
                self._buffer_event(
                    event, "resolve", event.get("resolved_at", event.get("clock"))
                )
            obs_metrics.set_gauge("correlate.buffer_depth", len(self._buffer))
            if self._clocks:
                obs_metrics.set_gauge(
                    "correlate.watermark_lag_s",
                    max(self._clocks.values()) - self._watermark,
                )
            ready, self._ready = self._ready, []
            return ready

    def consume_log(self, log: "FleetEventLog", after_seq: int = -1) -> int:
        """Tail a durable fleet event log out-of-process.

        Feeds every record with ``seq > after_seq`` to :meth:`observe` and
        returns the last sequence number consumed (pass it back on the next
        poll).  Re-tailing from an earlier sequence is harmless — processing
        is idempotent per incident id.
        """
        last = after_seq
        for rec in log.tail(after_seq):
            self.observe(rec["event"])
            last = max(last, rec.get("seq", last))
        return last

    def finalize(self) -> list[FleetIncident]:
        """Process every buffered event regardless of the watermark; returns
        groups now ready for drill-down.

        For stream-end draining only (an event log whose run has completed,
        or the supervisor's quiesce sweep); never call mid-run — it would
        break the watermark determinism that keeps resumed histories
        identical.
        """
        with self._lock:
            if self._buffer:
                self._watermark = max(
                    self._watermark, max(e["t"] for e in self._buffer)
                )
                self._process()
            ready, self._ready = self._ready, []
            return ready

    def _on_advanced(self, event: dict) -> None:
        env = event.get("env")
        if env not in self._clocks:
            return
        clock = event.get("advanced_s", event.get("clock"))
        if clock is None or clock <= self._clocks[env]:
            return
        self._clocks[env] = float(clock)
        watermark = min(self._clocks.values())
        if watermark > self._watermark:
            self._watermark = watermark
            obs_metrics.inc("correlate.watermark_advances")
            with span("correlate.watermark", sim_t=watermark):
                self._process()

    def _buffer_event(self, event: dict, kind: str, time: float | None) -> None:
        env = event.get("env")
        if env not in self._components_of or time is None:
            return
        self._buffer.append(
            {
                "t": float(time),
                "kind": kind,
                "env": env,
                "incident_id": event["incident_id"],
            }
        )

    # -- watermark processing --------------------------------------------
    def _process(self) -> None:
        """Process buffered events up to the watermark, in simulated order."""
        due = [e for e in self._buffer if e["t"] <= self._watermark]
        if due:
            self._buffer = [e for e in self._buffer if e["t"] > self._watermark]
            due.sort(
                key=lambda e: (
                    e["t"],
                    0 if e["kind"] == "open" else 1,
                    e["env"],
                    e["incident_id"],
                )
            )
            for entry in due:
                if entry["kind"] == "open":
                    self._process_open(entry)
                else:
                    self._process_resolve(entry)
        # Surface groups whose drill-down evidence cutoff the watermark has
        # now passed (and that still lack a report — a resumed engine
        # re-surfaces them, so a kill cannot lose the drill-down).
        for group in sorted(self._groups.values(), key=lambda g: (g.opened_at, g.fleet_id)):
            if (
                group.state is FleetIncidentState.OPEN
                and group.report_data is None
                and group.fleet_id not in self._ready_emitted
                and self._watermark >= group.opened_at + self.drilldown_delay_s
            ):
                self._ready_emitted.add(group.fleet_id)
                self._ready.append(group)

    def _process_open(self, entry: dict) -> None:
        incident_id = entry["incident_id"]
        if incident_id in self._seen_opens:
            return
        self._seen_opens.add(incident_id)
        env, t = entry["env"], entry["t"]
        self._open_counts[env] = self._open_counts.get(env, 0) + 1
        # Drop pending opens that can no longer be consumed: any future
        # trigger t' satisfies t' - window > t0.
        horizon = t - self.window_s
        self._pending = {
            iid: (t0, e0) for iid, (t0, e0) in self._pending.items() if t0 >= horizon
        }
        if self._join_live_group(incident_id, env, t):
            return
        self._pending[incident_id] = (t, env)
        self._try_form_group(env, t)

    def _join_live_group(self, incident_id: str, env: str, t: float) -> bool:
        """Fold a new open into an open group of one of its components."""
        eligible: list[FleetIncident] = []
        for component in self._components_of[env]:
            fleet_id = self._live_by_component.get(component)
            if fleet_id is None:
                continue
            group = self._groups[fleet_id]
            if t - group.last_open_at <= self.window_s:
                eligible.append(group)
        if not eligible:
            return False
        group = min(eligible, key=lambda g: (g.opened_at, g.fleet_id))
        member = {"env": env, "incident_id": incident_id, "opened_at": t, "resolved_at": None}
        group.members.append(member)
        group.last_open_at = t
        self._member_group[incident_id] = group.fleet_id
        # A wider wave is stronger evidence: refresh the conditional
        # co-occurrence confidence as the group grows.
        group.confidence = round(
            self._confidence(
                group.component_id,
                [(m["opened_at"], m["env"], m["incident_id"]) for m in group.members],
            ),
            4,
        )
        self._journal("grow", group, t, member=member)
        return True

    def _try_form_group(self, env: str, t: float) -> None:
        """Open a fleet incident if one of ``env``'s shared components now
        has a qualifying co-occurrence window ending at ``t``."""
        best: tuple[tuple, str, list[tuple[float, str, str]], float] | None = None
        for component in self._components_of[env]:
            attached = set(self.membership[component])
            window_opens = sorted(
                (t0, e0, iid)
                for iid, (t0, e0) in self._pending.items()
                if e0 in attached and t - self.window_s <= t0 <= t
            )
            firing = {e0 for _t0, e0, _iid in window_opens}
            k = len(firing)
            if k < self.min_members:
                continue
            confidence = self._confidence(component, window_opens)
            if confidence < self.min_confidence:
                continue
            n = len(attached)
            rank = (k, k / n, -n, component)
            if best is None or rank > best[0]:
                best = (rank, component, window_opens, confidence)
        if best is None:
            return
        _rank, component, window_opens, confidence = best
        self._counter += 1
        # Re-escalation: a predecessor group on this component that resolved
        # within one correlation window of this wave's trigger is the same
        # flapping degradation coming back — link the successor to it.
        escalated_from: str | None = None
        previous = self._recently_resolved.get(component)
        if previous is not None and t - previous[1] <= self.window_s:
            escalated_from = previous[0]
            obs_metrics.inc("correlate.reescalations")
        group = FleetIncident(
            fleet_id=f"FLEET-{component}-{self._counter}",
            component_id=component,
            opened_at=t,
            confidence=round(confidence, 4),
            last_open_at=t,
            members=[
                {"env": e0, "incident_id": iid, "opened_at": t0, "resolved_at": None}
                for t0, e0, iid in window_opens
            ],
            escalated_from=escalated_from,
        )
        for _t0, _e0, iid in window_opens:
            self._pending.pop(iid, None)
            self._member_group[iid] = group.fleet_id
        self._groups[group.fleet_id] = group
        self._live_by_component[component] = group.fleet_id
        self._journal("open", group, t)

    def _confidence(
        self, component: str, window_opens: list[tuple[float, str, str]]
    ) -> float:
        """Conditional co-occurrence vs each member's baseline open rate.

        Rates are measured over the **watermark**, never a member's live
        clock: live clocks race arbitrarily ahead of the watermark under the
        barrier-free runtime, and a confidence read from them would differ
        between interleavings of the same simulated history.  The watermark
        at a processing point is a pure function of the event sequence, so
        the journalled confidence is too.
        """
        attached = self.membership[component]
        in_wave: dict[str, int] = {}
        for _t0, e0, _iid in window_opens:
            in_wave[e0] = in_wave.get(e0, 0) + 1
        k = len(in_wave)
        observed_s = max(self._watermark, self.window_s)
        expected = 0.0
        for env in attached:
            prior = self._open_counts.get(env, 0) - in_wave.get(env, 0)
            rate = prior / observed_s
            expected += 1.0 - math.exp(-rate * self.window_s)
        return max(0.0, min(1.0, (k - expected) / len(attached)))

    def _process_resolve(self, entry: dict) -> None:
        incident_id = entry["incident_id"]
        if incident_id in self._seen_resolves:
            return
        self._seen_resolves.add(incident_id)
        # An unconsumed open that resolves can no longer anchor a group.
        self._pending.pop(incident_id, None)
        fleet_id = self._member_group.get(incident_id)
        if fleet_id is None:
            return
        group = self._groups[fleet_id]
        for member in group.members:
            if member["incident_id"] == incident_id:
                member["resolved_at"] = entry["t"]
        self._journal(
            "member_resolved",
            group,
            entry["t"],
            incident_id=incident_id,
            resolved_at=entry["t"],
        )
        if group.state is FleetIncidentState.OPEN and all(
            m["resolved_at"] is not None for m in group.members
        ):
            group.state = FleetIncidentState.RESOLVED
            # Max over member resolve times, NOT this entry's time: member
            # resolutions can be buffered and processed across different
            # watermark batches in any order (a lagging member's backdated
            # short-circuit arrives after a faster sibling's), and the
            # group's resolve time must not depend on that order.
            group.resolved_at = max(m["resolved_at"] for m in group.members)
            if self._live_by_component.get(group.component_id) == fleet_id:
                del self._live_by_component[group.component_id]
            # Remember the resolve for the re-escalation cooldown: a new
            # group on this component within one window links back here.
            self._recently_resolved[group.component_id] = (
                fleet_id,
                group.resolved_at,
            )
            self._journal("resolve", group, group.resolved_at)

    def _journal(self, event: str, group: FleetIncident, time: float, **extra) -> None:
        if self.store is not None:
            self.store.record(event, group, time, **extra)

    # -- supervisor integration ------------------------------------------
    def disposition(self, incident_id: str, env: str, opened_at: float) -> str:
        """How the supervisor should treat one open member incident.

        * ``"grouped"`` — it belongs to a fleet incident: attach the fleet
          report instead of running a redundant per-member pipeline;
        * ``"independent"`` — it can never be grouped (unattached
          environment, or the watermark has passed its whole co-occurrence
          window): diagnose it normally;
        * ``"pending"`` — siblings may still co-fire: hold the diagnosis.
        """
        with self._lock:
            if incident_id in self._member_group:
                return "grouped"
            if env not in self._components_of:
                return "independent"
            if self._watermark >= opened_at + self.window_s:
                return "independent"
            return "pending"

    def report_for(self, incident_id: str) -> dict | None:
        """The fleet report covering a grouped member incident (None until
        the drill-down has attached one)."""
        with self._lock:
            fleet_id = self._member_group.get(incident_id)
            if fleet_id is None:
                return None
            return self._groups[fleet_id].report_data

    def short_circuit(self, incident_id: str) -> tuple[str, float, dict] | None:
        """Short-circuit ticket for one grouped member incident.

        Returns ``(fleet_id, resolve_time, report_data)`` once the incident
        belongs to a fleet incident whose drill-down report is attached —
        the supervisor resolves the member incident at ``resolve_time`` (the
        group's open time, a deterministic simulated instant) with the fleet
        report instead of running its own pipeline.  ``None`` while the
        incident is ungrouped or the drill-down is still pending.
        """
        with self._lock:
            fleet_id = self._member_group.get(incident_id)
            if fleet_id is None:
                return None
            group = self._groups[fleet_id]
            if group.report_data is None:
                return None
            return (fleet_id, group.opened_at, copy.deepcopy(group.report_data))

    def attach_report(self, fleet_id: str, report_data: dict) -> None:
        """Attach the drill-down's fleet-level report (journalled)."""
        with self._lock:
            group = self._groups[fleet_id]
            group.report_data = report_data
            self._journal("report", group, group.opened_at)

    def group_of(self, incident_id: str) -> str | None:
        with self._lock:
            return self._member_group.get(incident_id)

    def group_for_env(self, env: str) -> str | None:
        """The latest fleet incident one of ``env``'s incidents belongs to."""
        with self._lock:
            groups = [
                g for g in self._groups.values() if env in {m["env"] for m in g.members}
            ]
            if not groups:
                return None
            return max(groups, key=lambda g: (g.opened_at, g.fleet_id)).fleet_id

    # -- queries ---------------------------------------------------------
    @property
    def watermark(self) -> float:
        with self._lock:
            return self._watermark

    def fleet_incidents(self) -> list[FleetIncident]:
        with self._lock:
            return sorted(
                self._groups.values(), key=lambda g: (g.opened_at, g.fleet_id)
            )

    def open_fleet_incidents(self) -> list[FleetIncident]:
        return [
            g for g in self.fleet_incidents() if g.state is FleetIncidentState.OPEN
        ]

    def to_dict(self) -> list[dict]:
        return [g.to_dict() for g in self.fleet_incidents()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups)

    # -- resume ----------------------------------------------------------
    def state_dict(self) -> dict:
        """Freeze the engine for a supervisor checkpoint (JSON-able).

        Safe to call from the checkpoint flusher's pool thread; capture it
        *after* the per-environment snapshots so the engine state is never
        behind them (re-fed events from an engine that is ahead fold
        idempotently; events an engine never saw would be lost).
        """
        with self._lock:
            return {
                "window_s": self.window_s,
                "min_members": self.min_members,
                "min_confidence": self.min_confidence,
                "drilldown_delay_s": self.drilldown_delay_s,
                "clocks": dict(sorted(self._clocks.items())),
                "watermark": self._watermark,
                "buffer": sorted(
                    (dict(e) for e in self._buffer),
                    key=lambda e: (e["t"], e["kind"], e["env"], e["incident_id"]),
                ),
                "seen_opens": sorted(self._seen_opens),
                "seen_resolves": sorted(self._seen_resolves),
                "pending": {
                    iid: [t, env] for iid, (t, env) in sorted(self._pending.items())
                },
                "open_counts": dict(sorted(self._open_counts.items())),
                "groups": [g.to_dict() for g in sorted(
                    self._groups.values(), key=lambda g: g.fleet_id
                )],
                "live_by_component": dict(sorted(self._live_by_component.items())),
                "recently_resolved": {
                    component: [fleet_id, resolved_at]
                    for component, (fleet_id, resolved_at) in sorted(
                        self._recently_resolved.items()
                    )
                },
                "member_group": dict(sorted(self._member_group.items())),
                "counter": self._counter,
            }

    def load_state(self, state: dict) -> None:
        """Thaw a :meth:`state_dict` snapshot (journalling suppressed — the
        journal already holds these transitions).

        Refuses a snapshot frozen under different correlation parameters:
        resuming with, say, a different window would silently produce a
        fleet-incident history that diverges from the uninterrupted run —
        the exact bug class the checkpoint meta guard exists to surface.
        """
        recorded = {
            "window_s": state.get("window_s", self.window_s),
            "min_members": state.get("min_members", self.min_members),
            "min_confidence": state.get("min_confidence", self.min_confidence),
            "drilldown_delay_s": state.get(
                "drilldown_delay_s", self.drilldown_delay_s
            ),
        }
        current = {
            "window_s": self.window_s,
            "min_members": self.min_members,
            "min_confidence": self.min_confidence,
            "drilldown_delay_s": self.drilldown_delay_s,
        }
        if recorded != current:
            raise ValueError(
                "correlation state was checkpointed under different "
                f"parameters: checkpoint {recorded!r} vs current {current!r}"
            )
        with self._lock:
            self._clocks.update(state.get("clocks", {}))
            self._watermark = state.get("watermark", 0.0)
            self._buffer = [dict(e) for e in state.get("buffer", [])]
            self._seen_opens = set(state.get("seen_opens", ()))
            self._seen_resolves = set(state.get("seen_resolves", ()))
            self._pending = {
                iid: (t, env) for iid, (t, env) in state.get("pending", {}).items()
            }
            self._open_counts = dict(state.get("open_counts", {}))
            self._groups = {
                g["fleet_id"]: FleetIncident.from_dict(g)
                for g in state.get("groups", [])
            }
            self._live_by_component = dict(state.get("live_by_component", {}))
            self._recently_resolved = {
                component: (fleet_id, resolved_at)
                for component, (fleet_id, resolved_at) in state.get(
                    "recently_resolved", {}
                ).items()
            }
            self._member_group = dict(state.get("member_group", {}))
            self._counter = state.get("counter", len(self._groups))
            self._ready = []
            self._ready_emitted = set()
