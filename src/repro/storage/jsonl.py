"""Durable JSONL backend: append-only segment files with an in-memory index.

Layout under ``root``::

    root/
      MANIFEST.json          # advisory summary, atomically replaced by writers
      <keyspace>.jsonl       # one segment file per keyspace, one record/line

Durability model
----------------
* **Appends** go straight to the keyspace's segment file (compact JSON, one
  line per record) and are pushed to the OS on :meth:`flush` (``fsync`` when
  ``fsync=True``).
* **Crash safety** comes from segment files being append-only: a crash
  mid-append can leave at most one torn trailing line per segment; replay
  detects and ignores it, and the next *append* (never a read — a
  concurrent query process must not mutate a live writer's file) truncates
  it away so writing resumes on a clean line boundary.
* **Replay** happens on open: every segment is scanned once to rebuild the
  in-memory index (per-keyspace record count, time bounds, per-key counts),
  after which scans stream records back off disk in append order.  Replay
  never consults the manifest — ``MANIFEST.json`` is an *advisory* summary
  of committed segment state for operators and external tooling, refreshed
  (write-then-rename, so it is never torn) on flush/close by instances
  that actually appended; read-only opens leave it untouched.

The index keeps only bookkeeping, not the records themselves, so an open
store's memory footprint is O(#keyspaces + #distinct keys), not O(#records)
— the property that lets ``repro watch --state-dir`` outlive one process's
RAM budget.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterable, Iterator

from ..obs import metrics as obs_metrics
from ..obs import span
from . import keyspaces as _keyspaces
from .backend import KEY_FIELD, Record, TIME_FIELD, atomic_write_json, matches

__all__ = ["JsonlBackend"]

#: Keyspaces the observability sidecar itself writes.  Appends to these get
#: metrics but never spans — a span finishing *is* an append to ``traces``,
#: so tracing those appends would recurse.
_OBS_KEYSPACES = frozenset((_keyspaces.TRACES, _keyspaces.OBS_METRICS))

_MANIFEST = "MANIFEST.json"
_SUFFIX = ".jsonl"


def _safe_keyspace(keyspace: str) -> str:
    if not keyspace or any(ch in keyspace for ch in "/\\\0") or keyspace.startswith("."):
        raise ValueError(f"invalid keyspace name {keyspace!r}")
    return keyspace


class _KeyspaceIndex:
    """Bookkeeping for one segment file (no record bodies kept)."""

    __slots__ = ("count", "t_min", "t_max", "key_counts", "committed_bytes")

    def __init__(self) -> None:
        self.count = 0
        self.t_min: float | None = None
        self.t_max: float | None = None
        self.key_counts: dict[str, int] = {}
        self.committed_bytes = 0

    def note(self, record: Record, nbytes: int) -> None:
        self.count += 1
        self.committed_bytes += nbytes
        t = record.get(TIME_FIELD)
        if isinstance(t, (int, float)):
            self.t_min = t if self.t_min is None else min(self.t_min, t)
            self.t_max = t if self.t_max is None else max(self.t_max, t)
        key = record.get(KEY_FIELD)
        if key is not None:
            self.key_counts[key] = self.key_counts.get(key, 0) + 1


class JsonlBackend:
    """Append-only JSONL segment files per keyspace, replayed on open."""

    durable = True

    def __init__(self, root: str | os.PathLike, *, fsync: bool = False) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True)
        # guarded-by: _lock
        self._files: dict[str, object] = {}
        # guarded-by: _lock
        self._index: dict[str, _KeyspaceIndex] = {}
        self._lock = threading.RLock()
        self._closed = False
        #: True once this instance appended; read-only opens (e.g. `repro
        #: incidents` against a live watch) must not rewrite the manifest.
        # guarded-by: _lock
        self._dirty = False
        self._replay_all()
        from ..devtools.sanitize import instrument_guarded

        instrument_guarded(self)  # no-op unless REPRO_SANITIZE=1

    # -- open/replay -----------------------------------------------------
    def _replay_all(self) -> None:
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            self._replay_segment(path.stem)

    def _replay_segment(self, keyspace: str) -> None:
        """Rebuild one keyspace's index, ignoring any torn trailing line.

        Replay never mutates the segment: a read-only open (``repro
        incidents`` against a live watch) must not truncate a file another
        process is still appending to.  ``committed_bytes`` simply stops at
        the last intact line; the torn tail — if it really is one — is cut
        away by the first *append* this backend makes (see
        :meth:`_file_for`), which is an operation only the segment's owner
        performs.
        """
        path = self._segment_path(keyspace)
        index = _KeyspaceIndex()
        with path.open("rb") as fh:
            for line in fh:
                if not line.endswith(b"\n"):
                    break  # torn tail from a crash mid-append
                try:
                    record = json.loads(line)
                except ValueError:
                    break  # corrupt tail: everything before it is intact
                index.note(record, len(line))
        with self._lock:
            self._index[keyspace] = index

    # -- protocol --------------------------------------------------------
    def append(self, keyspace: str, record: Record) -> None:
        self.append_many(keyspace, (record,))

    def append_many(self, keyspace: str, records: Iterable[Record]) -> int:
        self._check_open()
        keyspace = _safe_keyspace(keyspace)
        if keyspace in _OBS_KEYSPACES:
            # The sidecar's own writes: metrics only (a finishing span *is*
            # an append to `traces`; tracing it would recurse).
            with obs_metrics.timed("storage.jsonl.append_s"):
                written, nbytes = self._append_locked(keyspace, records)
        else:
            with span("storage.append", keyspace=keyspace):
                with obs_metrics.timed("storage.jsonl.append_s"):
                    written, nbytes = self._append_locked(keyspace, records)
        obs_metrics.inc("storage.jsonl.records", written)
        obs_metrics.inc("storage.jsonl.bytes", nbytes)
        return written

    def _append_locked(
        self, keyspace: str, records: Iterable[Record]
    ) -> tuple[int, int]:
        with self._lock:
            fh = self._file_for(keyspace)
            index = self._index.setdefault(keyspace, _KeyspaceIndex())
            self._dirty = True
            written = 0
            nbytes = 0
            for record in records:
                line = json.dumps(record, separators=(",", ":")) + "\n"
                data = line.encode("utf-8")
                fh.write(data)
                index.note(record, len(data))
                written += 1
                nbytes += len(data)
            return written, nbytes

    def scan(
        self,
        keyspace: str,
        *,
        key: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Record]:
        obs_metrics.inc("storage.jsonl.scans")
        with self._lock:
            index = self._index.get(keyspace)
            if index is None or index.count == 0:
                return
            if key is not None and key not in index.key_counts:
                return
            if start is not None and index.t_max is not None and index.t_max < start:
                return
            if end is not None and index.t_min is not None and index.t_min > end:
                return
            self._flush_file(keyspace)
            committed = index.committed_bytes
        path = self._segment_path(keyspace)
        remaining = committed
        with path.open("rb") as fh:
            for line in fh:
                if remaining <= 0:
                    break
                remaining -= len(line)
                record = json.loads(line)
                if matches(record, key, start, end):
                    yield record

    def keyspaces(self) -> list[str]:
        with self._lock:
            return sorted(ks for ks, idx in self._index.items() if idx.count)

    def refresh(self) -> int:
        """Pick up records appended by *another* process since open.

        A reader's index is frozen at replay time, so a live tailer polling
        :meth:`scan` would never see lines the writer appended after the
        tailer opened — the failure mode of an SSE consumer following a
        watch from a second process.  ``refresh`` extends the index of every
        segment this instance does not itself write (own write handles are
        already current) by replaying new *complete* lines from
        ``committed_bytes`` onward; a torn or corrupt tail is left for the
        next refresh, exactly like replay-on-open.  Returns the number of
        newly indexed records.
        """
        self._check_open()
        total = 0
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            keyspace = path.stem
            with self._lock:
                if keyspace in self._files:
                    continue  # we are this segment's writer: index is current
                index = self._index.setdefault(keyspace, _KeyspaceIndex())
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                if size <= index.committed_bytes:
                    continue
                with path.open("rb") as fh:
                    fh.seek(index.committed_bytes)
                    for line in fh:
                        if not line.endswith(b"\n"):
                            break  # torn tail: the writer is mid-append
                        try:
                            record = json.loads(line)
                        except ValueError:
                            break
                        index.note(record, len(line))
                        total += 1
        if total:
            obs_metrics.inc("storage.jsonl.refreshed", total)
        return total

    def flush(self) -> None:
        self._check_open()
        with obs_metrics.timed("storage.jsonl.flush_s"):
            with self._lock:
                for keyspace in list(self._files):
                    self._flush_file(keyspace)
                self._write_manifest()

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            for keyspace in list(self._files):
                self._flush_file(keyspace)
                self._files.pop(keyspace).close()  # type: ignore[attr-defined]
            self._write_manifest()
            self._closed = True

    # -- introspection ---------------------------------------------------
    def count(self, keyspace: str) -> int:
        with self._lock:
            index = self._index.get(keyspace)
            return index.count if index else 0

    def keys(self, keyspace: str) -> list[str]:
        """Distinct routing keys seen in a keyspace (from the index)."""
        with self._lock:
            index = self._index.get(keyspace)
            return sorted(index.key_counts) if index else []

    def __len__(self) -> int:
        with self._lock:
            return sum(index.count for index in self._index.values())

    # -- internals -------------------------------------------------------
    def _segment_path(self, keyspace: str) -> Path:
        return self.root / f"{keyspace}{_SUFFIX}"

    def _file_for(self, keyspace: str):
        # Self-locking (the RLock is reentrant under append_many's hold) so
        # the _files mutation is guarded no matter who calls.
        with self._lock:
            fh = self._files.get(keyspace)
            if fh is None:
                path = self._segment_path(keyspace)
                index = self._index.get(keyspace)
                # First write to this segment: drop a torn tail left by a
                # crashed predecessor so the append starts on a line boundary.
                # Only the writer does this — replay/scan never mutate.
                if (
                    index is not None
                    and path.exists()
                    and path.stat().st_size > index.committed_bytes
                ):
                    with path.open("r+b") as tail:
                        tail.truncate(index.committed_bytes)
                fh = path.open("ab")
                self._files[keyspace] = fh
            return fh

    def _flush_file(self, keyspace: str) -> None:
        fh = self._files.get(keyspace)
        if fh is not None:
            fh.flush()  # type: ignore[attr-defined]
            if self.fsync:
                os.fsync(fh.fileno())  # type: ignore[attr-defined]

    def _write_manifest(self) -> None:
        """Advisory summary of committed segment state (writers only).

        Replay never reads this — recovery is segment-scan based; the
        manifest exists for operators and external tooling.  Written
        atomically, and only by instances that appended, so a read-only
        open of a live writer's directory leaves it alone.
        """
        if not self._dirty:
            return
        manifest = {
            "version": 1,
            "keyspaces": {
                ks: {"records": idx.count, "bytes": idx.committed_bytes}
                for ks, idx in sorted(self._index.items())
            },
        }
        atomic_write_json(self.root / _MANIFEST, manifest, indent=2, sort_keys=True)

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"backend at {self.root} is closed")
