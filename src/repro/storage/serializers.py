"""Full-fidelity dict serializers for the database/SAN object graph.

The config store's ``snapshot()`` views are lossy by design (they capture
what configuration *diffing* needs); persistence needs lossless forms.
Everything here round-trips exactly — ``X_from_dict(X_to_dict(x))``
reconstructs an equal object — and produces plain ``json.dumps``-able
structures, so the same serializers back

* the JSONL journal records of the re-founded monitoring stores,
* ``DiagnosisBundle.save()`` / ``DiagnosisBundle.load()``,
* the fleet supervisor's resume checkpoints.

This module deliberately depends only on :mod:`repro.db` and
:mod:`repro.san` so it can be imported from anywhere (including the monitor
stores) without cycles; :mod:`repro.core.serialize` re-exports the public
names for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any

from ..db.catalog import Catalog, Column, Index, Table, Tablespace
from ..db.executor import OperatorRuntime, QueryRun
from ..db.optimizer.cost import DbConfig
from ..db.plans import OpType, PlanOperator
from ..db.query import JoinEdge, Predicate, QuerySpec
from ..san.builder import Testbed
from ..san.components import (
    Component,
    ComponentType,
    Disk,
    FcPort,
    FcSwitch,
    Hba,
    Server,
    StoragePool,
    StorageSubsystem,
    Volume,
)
from ..san.topology import SanTopology
from ..san.zoning import AccessControl

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "run_to_dict",
    "run_from_dict",
    "dbconfig_to_dict",
    "dbconfig_from_dict",
    "catalog_to_dict",
    "catalog_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "component_to_dict",
    "component_from_dict",
    "topology_to_dict",
    "topology_from_dict",
    "access_to_dict",
    "access_from_dict",
    "testbed_to_dict",
    "testbed_from_dict",
]


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------
def plan_to_dict(plan: PlanOperator) -> dict[str, Any]:
    """Nested-dict form of a plan tree (round-trips via plan_from_dict)."""
    return {
        "op_id": plan.op_id,
        "op_type": plan.op_type.value,
        "table": plan.table,
        "index": plan.index,
        "est_rows": plan.est_rows,
        "est_cost": plan.est_cost,
        "loops": plan.loops,
        "selectivity": plan.selectivity,
        "detail": plan.detail,
        "children": [plan_to_dict(child) for child in plan.children],
    }


def plan_from_dict(data: dict[str, Any]) -> PlanOperator:
    """Inverse of :func:`plan_to_dict`."""
    return PlanOperator(
        op_id=data["op_id"],
        op_type=OpType(data["op_type"]),
        table=data.get("table"),
        index=data.get("index"),
        est_rows=data.get("est_rows", 1.0),
        est_cost=data.get("est_cost", 0.0),
        loops=data.get("loops", 1),
        selectivity=data.get("selectivity", 1.0),
        detail=data.get("detail", ""),
        children=[plan_from_dict(child) for child in data.get("children", [])],
    )


# ---------------------------------------------------------------------------
# query runs
# ---------------------------------------------------------------------------
def _operator_runtime_to_dict(rt: OperatorRuntime) -> dict[str, Any]:
    out = {f.name: getattr(rt, f.name) for f in fields(OperatorRuntime)}
    out["op_type"] = rt.op_type.value
    return out


def _operator_runtime_from_dict(data: dict[str, Any]) -> OperatorRuntime:
    kwargs = dict(data)
    kwargs["op_type"] = OpType(kwargs["op_type"])
    return OperatorRuntime(**kwargs)


def run_to_dict(run: QueryRun) -> dict[str, Any]:
    """Lossless form of one recorded query run (APG annotation source)."""
    return {
        "run_id": run.run_id,
        "query_name": run.query_name,
        "plan": plan_to_dict(run.plan),
        "start_time": run.start_time,
        "operators": {
            op_id: _operator_runtime_to_dict(rt)
            for op_id, rt in sorted(run.operators.items())
        },
        "db_metrics": dict(run.db_metrics),
        "satisfactory": run.satisfactory,
    }


def run_from_dict(data: dict[str, Any]) -> QueryRun:
    """Inverse of :func:`run_to_dict`."""
    return QueryRun(
        run_id=data["run_id"],
        query_name=data["query_name"],
        plan=plan_from_dict(data["plan"]),
        start_time=data["start_time"],
        operators={
            op_id: _operator_runtime_from_dict(rt)
            for op_id, rt in data.get("operators", {}).items()
        },
        db_metrics=dict(data.get("db_metrics", {})),
        satisfactory=data.get("satisfactory"),
    )


# ---------------------------------------------------------------------------
# database configuration + catalog
# ---------------------------------------------------------------------------
def dbconfig_to_dict(config: DbConfig) -> dict[str, Any]:
    return {f.name: getattr(config, f.name) for f in fields(DbConfig)}


def dbconfig_from_dict(data: dict[str, Any]) -> DbConfig:
    return DbConfig(**data)


def catalog_to_dict(catalog: Catalog) -> dict[str, Any]:
    """Lossless catalog form — unlike ``Catalog.snapshot()``, which keeps
    only what configuration diffing needs (no row widths, column stats)."""
    return {
        "tablespaces": [
            {"name": ts.name, "volume_id": ts.volume_id}
            for ts in sorted(catalog.tablespaces, key=lambda ts: ts.name)
        ],
        "tables": [
            {
                "name": t.name,
                "row_count": t.row_count,
                "row_width": t.row_width,
                "tablespace": t.tablespace,
                "columns": [
                    {
                        "name": c.name,
                        "ndv": c.ndv,
                        "avg_width": c.avg_width,
                        "null_fraction": c.null_fraction,
                    }
                    for c in (t.columns[name] for name in sorted(t.columns))
                ],
            }
            for t in sorted(catalog.tables, key=lambda t: t.name)
        ],
        "indexes": [
            {"name": i.name, "table": i.table, "column": i.column, "unique": i.unique}
            for i in sorted(catalog.indexes, key=lambda i: i.name)
        ],
    }


def catalog_from_dict(data: dict[str, Any]) -> Catalog:
    catalog = Catalog()
    for ts in data.get("tablespaces", []):
        catalog.add_tablespace(Tablespace(name=ts["name"], volume_id=ts["volume_id"]))
    for t in data.get("tables", []):
        catalog.add_table(
            Table(
                name=t["name"],
                row_count=t["row_count"],
                row_width=t["row_width"],
                tablespace=t["tablespace"],
                columns={
                    c["name"]: Column(
                        name=c["name"],
                        ndv=c["ndv"],
                        avg_width=c["avg_width"],
                        null_fraction=c["null_fraction"],
                    )
                    for c in t.get("columns", [])
                },
            )
        )
    for i in data.get("indexes", []):
        catalog.create_index(
            Index(name=i["name"], table=i["table"], column=i["column"], unique=i["unique"])
        )
    return catalog


# ---------------------------------------------------------------------------
# query specs
# ---------------------------------------------------------------------------
def spec_to_dict(spec: QuerySpec) -> dict[str, Any]:
    return {
        "name": spec.name,
        "tables": list(spec.tables),
        "predicates": [
            {
                "table": p.table,
                "column": p.column,
                "selectivity": p.selectivity,
                "description": p.description,
            }
            for p in spec.predicates
        ],
        "joins": [
            {
                "left_table": j.left_table,
                "left_column": j.left_column,
                "right_table": j.right_table,
                "right_column": j.right_column,
            }
            for j in spec.joins
        ],
        "order_by": spec.order_by,
        "limit": spec.limit,
        "aggregate": spec.aggregate,
    }


def spec_from_dict(data: dict[str, Any]) -> QuerySpec:
    return QuerySpec(
        name=data["name"],
        tables=list(data["tables"]),
        predicates=[Predicate(**p) for p in data.get("predicates", [])],
        joins=[JoinEdge(**j) for j in data.get("joins", [])],
        order_by=data.get("order_by", False),
        limit=data.get("limit"),
        aggregate=data.get("aggregate", False),
    )


# ---------------------------------------------------------------------------
# SAN components / topology / access control / testbed
# ---------------------------------------------------------------------------
_COMPONENT_CLASSES: dict[ComponentType, type[Component]] = {
    ComponentType.SERVER: Server,
    ComponentType.HBA: Hba,
    ComponentType.FC_PORT: FcPort,
    ComponentType.SWITCH: FcSwitch,
    ComponentType.SUBSYSTEM: StorageSubsystem,
    ComponentType.POOL: StoragePool,
    ComponentType.VOLUME: Volume,
    ComponentType.DISK: Disk,
}


def component_to_dict(component: Component) -> dict[str, Any]:
    """Type-tagged dict of every init field (subclass-specific ones too)."""
    out = {
        f.name: getattr(component, f.name)
        for f in fields(component)
        if f.init
    }
    out["type"] = component.ctype.value
    return out


def component_from_dict(data: dict[str, Any]) -> Component:
    kwargs = dict(data)
    ctype = ComponentType(kwargs.pop("type"))
    cls = _COMPONENT_CLASSES[ctype]
    return cls(**kwargs)


def topology_to_dict(topology: SanTopology) -> dict[str, Any]:
    return {
        "components": [component_to_dict(c) for c in topology],
        "edges": sorted(
            (parent.component_id, child.component_id)
            for parent in topology
            for child in topology.children(parent.component_id)
        ),
    }


def topology_from_dict(data: dict[str, Any]) -> SanTopology:
    topology = SanTopology()
    for comp in data.get("components", []):
        topology.add(component_from_dict(comp))
    for upstream, downstream in data.get("edges", []):
        topology.connect(upstream, downstream)
    return topology


def access_to_dict(access: AccessControl) -> dict[str, Any]:
    return {
        "zones": {z.name: sorted(z.port_ids) for z in access.zoning.zones},
        "lun_mapping": access.lun_mapping.snapshot(),
    }


def access_from_dict(data: dict[str, Any]) -> AccessControl:
    access = AccessControl()
    for name, ports in sorted(data.get("zones", {}).items()):
        access.zoning.create_zone(name, set(ports))
    for volume_id, servers in sorted(data.get("lun_mapping", {}).items()):
        for server_id in servers:
            access.lun_mapping.map_volume(volume_id, server_id)
    return access


def testbed_to_dict(testbed: Testbed) -> dict[str, Any]:
    return {
        "topology": topology_to_dict(testbed.topology),
        "access": access_to_dict(testbed.access),
        "db_server_id": testbed.db_server_id,
        "subsystem_id": testbed.subsystem_id,
        "pool1_id": testbed.pool1_id,
        "pool2_id": testbed.pool2_id,
        "volume_ids": dict(testbed.volume_ids),
    }


def testbed_from_dict(data: dict[str, Any]) -> Testbed:
    return Testbed(
        topology=topology_from_dict(data["topology"]),
        access=access_from_dict(data["access"]),
        db_server_id=data.get("db_server_id", "srv-db"),
        subsystem_id=data.get("subsystem_id", "ds6000"),
        pool1_id=data.get("pool1_id", "P1"),
        pool2_id=data.get("pool2_id", "P2"),
        volume_ids=dict(data.get("volume_ids", {})),
    )
