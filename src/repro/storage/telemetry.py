"""The unified telemetry-store facade over a pluggable backend.

:class:`TelemetryStore` is the single entry point to the monitoring data
layer: the metric, run, config-snapshot, and event stores re-founded on one
:class:`~repro.storage.backend.StorageBackend`.  It subclasses
:class:`~repro.monitor.collector.MonitoringStores`, so every existing call
site (``stores.metrics``, ``stores.runs``, collectors, diagnosis modules)
works unchanged — the facade adds construction, durability, and lifecycle:

* ``TelemetryStore.in_memory()`` — all four stores journalling through one
  :class:`~repro.storage.backend.MemoryBackend` (zero-copy appends); today's
  behaviour plus a scannable journal;
* ``TelemetryStore.open(state_dir)`` — a crash-safe
  :class:`~repro.storage.jsonl.JsonlBackend` under ``state_dir``; existing
  segment files are replayed on open, so metrics, runs (with labels),
  config snapshots, and events all survive process restarts;
* ``flush()`` / ``close()`` / context-manager support;
* any third-party object satisfying the backend protocol can be passed via
  ``TelemetryStore.with_backend(backend)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..monitor.collector import MonitoringStores
from ..monitor.configstore import ConfigStore
from ..monitor.events import EventLog
from ..monitor.runstore import RunStore
from ..monitor.timeseries import MetricStore
from .backend import MemoryBackend
from .jsonl import JsonlBackend

if TYPE_CHECKING:  # pragma: no cover
    from .backend import StorageBackend

__all__ = ["TelemetryStore"]


@dataclass
class TelemetryStore(MonitoringStores):
    """Backend-pluggable bundle of the four monitoring stores.

    Constructed bare (``TelemetryStore()``), it is exactly a
    :class:`MonitoringStores`: four in-memory stores, no journal.  Use the
    classmethods to wire a backend through every store.
    """

    backend: "StorageBackend | None" = field(default=None, compare=False)

    # -- construction ----------------------------------------------------
    @classmethod
    def with_backend(
        cls,
        backend: "StorageBackend",
        *,
        interval_s: float = 300.0,
        noise_sigma: float = 0.05,
        seed: int = 0,
        replay: bool = True,
    ) -> "TelemetryStore":
        """All four stores journalling through ``backend``.

        When ``replay`` is true and the backend is durable, existing journal
        records are re-applied so the store resumes where it left off.
        """
        store = cls(
            metrics=MetricStore(
                interval_s=interval_s,
                noise_sigma=noise_sigma,
                seed=seed,
                backend=backend,
            ),
            events=EventLog(backend=backend),
            config=ConfigStore(backend=backend),
            runs=RunStore(backend=backend),
            backend=backend,
        )
        if replay and getattr(backend, "durable", False):
            store.replay()
        return store

    @classmethod
    def in_memory(
        cls,
        *,
        interval_s: float = 300.0,
        noise_sigma: float = 0.05,
        seed: int = 0,
    ) -> "TelemetryStore":
        """A :class:`MemoryBackend`-backed store (zero-copy fast path)."""
        return cls.with_backend(
            MemoryBackend(),
            interval_s=interval_s,
            noise_sigma=noise_sigma,
            seed=seed,
            replay=False,
        )

    @classmethod
    def open(
        cls,
        state_dir: str | os.PathLike,
        *,
        backend: str = "jsonl",
        interval_s: float = 300.0,
        noise_sigma: float = 0.05,
        seed: int = 0,
        fsync: bool = False,
    ) -> "TelemetryStore":
        """Open (or create) a durable store under ``state_dir``.

        ``backend`` selects the durable implementation: ``"jsonl"`` (the
        default append-only segment files) or ``"sqlite"`` (one indexed
        database file — keyed scans stop reading whole segments).  Existing
        records are replayed either way, so a reopened store returns the
        exact same ``series()`` / ``runs()`` / ``events()`` / config diffs
        as the store that wrote them.
        """
        if backend == "jsonl":
            impl = JsonlBackend(state_dir, fsync=fsync)
        elif backend == "sqlite":
            from .sqlite import SqliteBackend

            impl = SqliteBackend(Path(state_dir) / "telemetry.db", fsync=fsync)
        else:
            raise ValueError(
                f"unknown backend {backend!r} (expected 'jsonl' or 'sqlite')"
            )
        return cls.with_backend(
            impl,
            interval_s=interval_s,
            noise_sigma=noise_sigma,
            seed=seed,
            replay=True,
        )

    # -- lifecycle -------------------------------------------------------
    def replay(self) -> dict[str, int]:
        """Re-apply every journalled record; per-store applied counts."""
        return {
            "metrics": self.metrics.replay_from_backend(),
            "runs": self.runs.replay_from_backend(),
            "config": self.config.replay_from_backend(),
            "events": self.events.replay_from_backend(),
        }

    def flush(self) -> None:
        if self.backend is not None:
            self.backend.flush()

    def close(self) -> None:
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bulk copy -------------------------------------------------------
    def absorb(self, other: MonitoringStores) -> None:
        """Copy every record of ``other`` into this (journalling) store.

        Used by ``DiagnosisBundle.save()`` to persist a bundle whose stores
        were never backend-wired.  Runs are copied with their *current*
        labels (the label is part of the journalled run record), so a
        labelled bundle round-trips labelled.
        """
        self.metrics.append_many(
            (sample.time, cid, metric, sample.value)
            for (cid, metric) in other.metrics.keys()
            for sample in other.metrics._raw[(cid, metric)]
        )
        for run in other.runs.runs():
            self.runs.add(run)
        for scope, when, flat in other.config.snapshots():
            self.config._insert_flat(when, scope, dict(flat))
        for event in other.events.events:
            self.events.add(event)
