"""Shared scaffolding for journaled ticket stores.

Two stores follow the same design — the per-environment incident journal
(:class:`repro.stream.IncidentStore`) and the fleet-incident journal
(:class:`repro.correlate.FleetIncidentStore`): lifecycle transitions are
appended as *delta* records keyed by ticket id in one keyspace, folded into
a latest-ticket view both live and on replay, with idempotent folding so the
duplicate transitions a resumed run deterministically re-journals cannot
change a ticket.  This base owns that machinery; subclasses contribute only
their event vocabulary (``_fold``) and query surface.
"""

from __future__ import annotations

import copy
import os
from typing import TYPE_CHECKING

from . import keyspaces

if TYPE_CHECKING:  # pragma: no cover
    from .backend import Record, StorageBackend

__all__ = ["JournalStore"]


class JournalStore:
    """Append-only transition journal folded into a latest-ticket view.

    Subclasses set :attr:`KEYSPACE` (also the journal's directory name under
    a state dir) and implement ``_fold(rec)``; writers build a record and
    pass it to :meth:`_append`.  Folding MUST be idempotent: ``open``-style
    records should deep-copy (a by-reference backend would otherwise see its
    journalled snapshot mutated by later folds), delta records should
    skip/overwrite.
    """

    KEYSPACE = keyspaces.JOURNAL

    def __init__(self, backend: "StorageBackend") -> None:
        self.backend = backend
        self._latest: dict[str, dict] = {}
        if getattr(backend, "durable", False):
            self.replay()

    @classmethod
    def open(cls, state_dir: str | os.PathLike):
        """Open (or create) the journal under ``state_dir/<KEYSPACE>``."""
        from pathlib import Path

        from .jsonl import JsonlBackend

        return cls(JsonlBackend(Path(state_dir) / cls.KEYSPACE))

    # -- folding ---------------------------------------------------------
    def replay(self) -> int:
        """Fold the journal into the latest-ticket view (on open)."""
        count = 0
        for rec in self.backend.scan(self.KEYSPACE):
            self._fold(rec)
            count += 1
        return count

    def _fold(self, rec: "Record") -> None:
        raise NotImplementedError

    def _append(self, rec: "Record") -> None:
        """Journal one transition record and fold it into the live view."""
        self.backend.append(self.KEYSPACE, rec)
        self._fold(rec)

    # -- lifecycle -------------------------------------------------------
    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    # -- queries ---------------------------------------------------------
    def _tickets(self) -> list[dict]:
        """Deep copies of every latest ticket (callers must not reach the
        folded state)."""
        return [copy.deepcopy(ticket) for ticket in self._latest.values()]

    def transitions(self, key: str | None = None) -> list[dict]:
        """The raw journal (optionally one ticket's), in append order."""
        return list(self.backend.scan(self.KEYSPACE, key=key))

    def __len__(self) -> int:
        return len(self._latest)
