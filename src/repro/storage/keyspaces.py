"""Central registry of backend keyspace names.

Every keyspace a :class:`~repro.storage.StorageBackend` holds is named
here, once.  The point is not the constants themselves but the invariant
they make checkable: a keyspace string that appears as a literal anywhere
else in the tree is a bug waiting to happen — two subsystems silently
sharing (or silently *not* sharing) a journal because someone retyped a
name.  ``repro lint`` enforces this (checker ``keyspace-literal``): class
``KEYSPACE`` attributes, ``keyspace=`` parameters and call-site keywords
must reference this module, never a string literal.

Adding a keyspace is therefore a two-line change: define the constant and
list it in :data:`ALL_KEYSPACES`; :func:`validate` keeps the two in sync
and rejects names the JSONL backend could not use as a segment filename.
"""

from __future__ import annotations

__all__ = [
    "METRICS",
    "RUNS",
    "CONFIG",
    "EVENTS",
    "INCIDENTS",
    "FLEET_INCIDENTS",
    "FLEET_EVENTS",
    "JOURNAL",
    "TRACES",
    "OBS_METRICS",
    "ALL_KEYSPACES",
    "validate",
]

#: Raw metric observations journalled by :class:`repro.monitor.MetricStore`.
METRICS = "metrics"

#: Query runs + satisfactory/unsatisfactory labels
#: (:class:`repro.monitor.RunStore`).
RUNS = "runs"

#: Configuration snapshots (:class:`repro.monitor.ConfigStore`).
CONFIG = "config"

#: System/SAN events (:class:`repro.monitor.EventLog`).
EVENTS = "events"

#: Per-environment incident lifecycle journal
#: (:class:`repro.stream.IncidentStore`).
INCIDENTS = "incidents"

#: Fleet-incident lifecycle journal
#: (:class:`repro.correlate.FleetIncidentStore`).
FLEET_INCIDENTS = "fleet_incidents"

#: Durable fleet supervisor event stream
#: (:class:`repro.stream.FleetEventLog`).
FLEET_EVENTS = "fleet_events"

#: Default keyspace of the abstract :class:`repro.storage.journal.JournalStore`
#: scaffolding (every concrete journal overrides it with one of the above).
JOURNAL = "journal"

#: Finished observability spans (:class:`repro.obs.Tracer`).  Write-only
#: sidecar data: nothing in the simulation or checkpoint path reads it.
TRACES = "traces"

#: Periodic metrics-registry snapshots (:meth:`repro.obs.MetricsRegistry.
#: snapshot_to`).  Sidecar-only, like :data:`TRACES`.
OBS_METRICS = "obs_metrics"

#: Every registered keyspace, in declaration order.
ALL_KEYSPACES: tuple[str, ...] = (
    METRICS,
    RUNS,
    CONFIG,
    EVENTS,
    INCIDENTS,
    FLEET_INCIDENTS,
    FLEET_EVENTS,
    JOURNAL,
    TRACES,
    OBS_METRICS,
)


def validate(name: str) -> str:
    """Return ``name`` if it is a registered keyspace; raise otherwise.

    Call sites that accept a keyspace from configuration (rather than
    referencing a constant directly) funnel through this so typos fail
    loudly instead of creating a parallel, never-read journal.
    """
    if name not in ALL_KEYSPACES:
        known = ", ".join(ALL_KEYSPACES)
        raise ValueError(f"unknown keyspace {name!r} (registered: {known})")
    return name
