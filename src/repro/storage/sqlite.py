"""Indexed sqlite backend: keyed scans without reading whole segments.

The JSONL backend replays and scans a keyspace by streaming its entire
segment file — fine for full replays, wasteful for keyed reads (``scan(key=
"V3/readTime")`` still deserialises every record of the keyspace).  This
backend keeps the same :class:`~repro.storage.backend.StorageBackend`
contract but stores records in a single sqlite database with a real
``(keyspace, key, ts)`` index, so keyed and time-windowed scans are index
lookups instead of segment reads.

Layout: one ``records`` table — ``seq`` (rowid) preserves append order,
``ks``/``k``/``t`` are the extracted routing columns, ``payload`` is the
full record as compact JSON.  WAL journalling keeps readers (``repro
incidents`` on a live state dir) off the writer's lock; ``synchronous`` is
NORMAL by default (durability comparable to the JSONL backend without
``fsync=True``, which maps to FULL here).

Commit policy mirrors the JSONL backend's buffered appends: writes commit on
:meth:`flush`/:meth:`close` and automatically every ``commit_every`` appends,
so a kill can lose at most the uncommitted tail — the same window a JSONL
writer's OS buffer leaves.  Scans run on the writer's own connection, so
they always see uncommitted appends (matching the other backends, where a
scan observes everything appended so far).

Thread safety: one connection guarded by an RLock; scans materialise their
result set under the lock (the index has already narrowed it), so iteration
never holds the database hostage.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Iterable, Iterator

from ..obs import metrics as obs_metrics
from .backend import KEY_FIELD, Record, TIME_FIELD

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    ks      TEXT NOT NULL,
    k       TEXT,
    t       REAL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_ks_key_ts ON records (ks, k, t);
CREATE INDEX IF NOT EXISTS idx_records_ks_ts ON records (ks, t);
"""


class SqliteBackend:
    """A :class:`StorageBackend` over one sqlite file with keyed indexes."""

    durable = True

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = False,
        commit_every: int = 1024,
    ) -> None:
        if commit_every < 1:
            raise ValueError("commit_every must be at least 1")
        self.path = Path(path)
        self.commit_every = commit_every
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # guarded-by: _lock
        self._closed = False
        # guarded-by: _lock
        self._uncommitted = 0
        # One shared connection: the backend serialises access itself, and a
        # single writer connection keeps WAL checkpointing predictable.
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={'FULL' if fsync else 'NORMAL'}")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        from ..devtools.sanitize import instrument_guarded

        instrument_guarded(self)  # no-op unless REPRO_SANITIZE=1

    # -- protocol --------------------------------------------------------
    def append(self, keyspace: str, record: Record) -> None:
        self.append_many(keyspace, (record,))

    def append_many(self, keyspace: str, records: Iterable[Record]) -> int:
        self._check_open()
        if not keyspace:
            raise ValueError("keyspace name must be non-empty")
        rows = [
            (
                keyspace,
                record.get(KEY_FIELD),
                self._timestamp(record),
                json.dumps(record, separators=(",", ":")),
            )
            for record in records
        ]
        if not rows:
            return 0
        with obs_metrics.timed("storage.sqlite.append_s"):
            with self._lock:
                self._conn.executemany(
                    "INSERT INTO records (ks, k, t, payload) VALUES (?, ?, ?, ?)", rows
                )
                self._uncommitted += len(rows)
                if self._uncommitted >= self.commit_every:
                    self._conn.commit()
                    self._uncommitted = 0
        obs_metrics.inc("storage.sqlite.records", len(rows))
        return len(rows)

    def scan(
        self,
        keyspace: str,
        *,
        key: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Record]:
        """Records in append order; key/window filters run on the index."""
        clauses = ["ks = ?"]
        params: list = [keyspace]
        if key is not None:
            clauses.append("k = ?")
            params.append(key)
        if start is not None:
            clauses.append("t >= ?")  # NULL t never matches a window (SQL)
            params.append(start)
        if end is not None:
            clauses.append("t <= ?")
            params.append(end)
        sql = (
            "SELECT payload FROM records WHERE "
            + " AND ".join(clauses)
            + " ORDER BY seq"
        )
        obs_metrics.inc("storage.sqlite.scans")
        with self._lock:
            self._check_open()
            rows = self._conn.execute(sql, params).fetchall()
        for (payload,) in rows:
            yield json.loads(payload)

    def keyspaces(self) -> list[str]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT DISTINCT ks FROM records ORDER BY ks"
            ).fetchall()
        return [ks for (ks,) in rows]

    def flush(self) -> None:
        self._check_open()
        with self._lock:
            self._conn.commit()
            self._uncommitted = 0

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            self._conn.commit()
            self._conn.close()
            self._closed = True

    # -- introspection ---------------------------------------------------
    def count(self, keyspace: str, key: str | None = None) -> int:
        """Record count for a keyspace (optionally one key) off the index."""
        sql = "SELECT COUNT(*) FROM records WHERE ks = ?"
        params: list = [keyspace]
        if key is not None:
            sql += " AND k = ?"
            params.append(key)
        with self._lock:
            self._check_open()
            (n,) = self._conn.execute(sql, params).fetchone()
        return n

    def keys(self, keyspace: str) -> list[str]:
        """Distinct routing keys seen in a keyspace (index-only query)."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT DISTINCT k FROM records WHERE ks = ? AND k IS NOT NULL "
                "ORDER BY k",
                (keyspace,),
            ).fetchall()
        return [k for (k,) in rows]

    def __len__(self) -> int:
        with self._lock:
            self._check_open()
            (n,) = self._conn.execute("SELECT COUNT(*) FROM records").fetchone()
        return n

    # -- internals -------------------------------------------------------
    @staticmethod
    def _timestamp(record: Record) -> float | None:
        t = record.get(TIME_FIELD)
        return float(t) if isinstance(t, (int, float)) else None

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"backend at {self.path} is closed")
