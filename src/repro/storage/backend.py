"""The pluggable telemetry-store backend protocol and its in-memory reference.

Every monitoring store (metrics, runs, config snapshots, events, incident
journals) persists through the same tiny contract: an append-only log of
JSON-able *records* partitioned into named **keyspaces**.  A record is a
plain dict carrying at least a timestamp under ``"t"`` and (optionally) a
routing key under ``"k"``; everything else is the owning store's business.

The contract is deliberately minimal — append, scan by key and/or time
window, flush, close — so third-party backends (sqlite, redis, a TSDB
gateway) can be dropped in without touching any store.  Two first-class
implementations ship with the package:

* :class:`MemoryBackend` (here) — records are kept **by reference** in
  per-keyspace lists: appending never serialises, copies, or touches the
  filesystem, which keeps the hot collector path as cheap as it was before
  stores were re-founded on the protocol;
* :class:`repro.storage.jsonl.JsonlBackend` — append-only segment files per
  keyspace with an in-memory index and crash-safe replay.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol, runtime_checkable

__all__ = [
    "Record",
    "StorageBackend",
    "MemoryBackend",
    "matches",
    "record",
    "atomic_write_json",
]


def atomic_write_json(
    path: str | os.PathLike,
    payload: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
) -> None:
    """Write JSON via tmp-file + rename: a crash leaves the old file or the
    new one, never a torn mix.  Shared by every checkpoint/manifest writer
    (bundle manifests, supervisor checkpoints, segment manifests)."""
    target = Path(path)
    tmp = target.with_name(f".{target.name}.tmp")
    tmp.write_text(json.dumps(payload, indent=indent, sort_keys=sort_keys))
    os.replace(tmp, target)

#: A stored record: JSON-able dict with a float timestamp under ``"t"`` and
#: an optional routing key under ``"k"``.
Record = dict

#: Reserved record fields every backend understands.
TIME_FIELD = "t"
KEY_FIELD = "k"


def matches(
    record: Record,
    key: str | None = None,
    start: float | None = None,
    end: float | None = None,
) -> bool:
    """Shared key/time-window filter semantics for backend ``scan``."""
    if key is not None and record.get(KEY_FIELD) != key:
        return False
    if start is not None or end is not None:
        t = record.get(TIME_FIELD)
        if t is None:
            return False
        if start is not None and t < start:
            return False
        if end is not None and t > end:
            return False
    return True


@runtime_checkable
class StorageBackend(Protocol):
    """What a telemetry-store backend must provide.

    Append order within a keyspace is the replay order; ``scan`` preserves
    it.  ``durable`` advertises whether records survive :meth:`close` (the
    stores use it to decide whether ``replay`` on open makes sense).
    """

    durable: bool

    def append(self, keyspace: str, record: Record) -> None:
        """Append one record to a keyspace (created on first use)."""
        ...

    def append_many(self, keyspace: str, records: Iterable[Record]) -> int:
        """Batch append; returns how many records were written."""
        ...

    def scan(
        self,
        keyspace: str,
        *,
        key: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Record]:
        """Records of a keyspace in append order, filtered by key/window."""
        ...

    def keyspaces(self) -> list[str]:
        """Sorted names of every keyspace holding at least one record."""
        ...

    def flush(self) -> None:
        """Push buffered appends to the backing medium."""
        ...

    def close(self) -> None:
        """Flush and release resources; further appends are an error."""
        ...


class MemoryBackend:
    """Reference in-memory backend: per-keyspace lists of record dicts.

    The zero-copy fast path: ``append`` stores the caller's dict object by
    reference (no serialisation), so a :class:`~repro.storage.TelemetryStore`
    opened in memory costs one list append per journal write — the same
    order of work the pre-protocol stores did.
    """

    durable = False

    def __init__(self) -> None:
        # guarded-by: _lock
        self._keyspaces: dict[str, list[Record]] = {}
        self._lock = threading.Lock()
        self._closed = False
        from ..devtools.sanitize import instrument_guarded

        instrument_guarded(self)  # no-op unless REPRO_SANITIZE=1

    def append(self, keyspace: str, record: Record) -> None:
        self._check_open()
        with self._lock:
            self._keyspaces.setdefault(keyspace, []).append(record)

    def append_many(self, keyspace: str, records: Iterable[Record]) -> int:
        self._check_open()
        with self._lock:
            rows = self._keyspaces.setdefault(keyspace, [])
            before = len(rows)
            rows.extend(records)
            return len(rows) - before

    def scan(
        self,
        keyspace: str,
        *,
        key: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Record]:
        with self._lock:
            rows = list(self._keyspaces.get(keyspace, ()))
        for record in rows:
            if matches(record, key, start, end):
                yield record

    def keyspaces(self) -> list[str]:
        with self._lock:
            return sorted(ks for ks, rows in self._keyspaces.items() if rows)

    def flush(self) -> None:  # nothing buffered
        self._check_open()

    def close(self) -> None:
        self._closed = True

    def __len__(self) -> int:
        with self._lock:
            return sum(len(rows) for rows in self._keyspaces.values())

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("backend is closed")


def record(t: float, key: str | None = None, **payload: Any) -> Record:
    """Convenience constructor enforcing the reserved-field layout."""
    out: Record = {TIME_FIELD: t}
    if key is not None:
        out[KEY_FIELD] = key
    out.update(payload)
    return out
