"""Keyspace-prefixed view of a backend: multi-tenant isolation by naming.

``repro serve`` hosts many tenants over **one** shared ``StorageBackend``
under one state root.  Rather than a backend instance (and a directory, and
a set of file handles) per tenant, each tenant gets a
:class:`PrefixedBackend` — a thin view that rewrites every keyspace name
through a fixed prefix (``incidents`` → ``t_acme__incidents``) on the way
down and strips it on the way back up.  The stores built on top
(:class:`~repro.stream.IncidentStore`, :class:`~repro.stream.FleetEventLog`,
:class:`~repro.correlate.FleetIncidentStore`) keep using their registered
keyspace constants unchanged, so the keyspace-registry lint still holds; the
prefix is invisible above this layer.

Isolation is by construction: a scan through one tenant's view can only ever
name that tenant's keyspaces, so two tenants running the *same* scenario
with the *same* environment names in one state root never read each other's
records.  Prefixes are minted only by the tenant registry
(:class:`repro.serve.tenants.TenantRegistry`) — the ``serve-discipline``
lint checker enforces that no other serve module constructs one.

``close()`` on a view only flushes: the shared backend outlives any one
tenant and is closed by its owner (the serve app) at shutdown.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .backend import Record, StorageBackend

__all__ = ["PrefixedBackend"]

#: Characters allowed in a prefix — must survive every backend's keyspace
#: validation (jsonl forbids path separators and leading dots).
_ALLOWED = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-_")


def _safe_prefix(prefix: str) -> str:
    if not prefix or prefix[0] == "." or not set(prefix) <= _ALLOWED:
        raise ValueError(f"invalid keyspace prefix {prefix!r}")
    return prefix


class PrefixedBackend:
    """A :class:`StorageBackend` view with every keyspace name prefixed."""

    def __init__(self, inner: StorageBackend, prefix: str) -> None:
        self.inner = inner
        self.prefix = _safe_prefix(prefix)
        self.durable = bool(getattr(inner, "durable", False))

    def _down(self, keyspace: str) -> str:
        return self.prefix + keyspace

    # -- protocol --------------------------------------------------------
    def append(self, keyspace: str, record: Record) -> None:
        self.inner.append(self._down(keyspace), record)

    def append_many(self, keyspace: str, records: Iterable[Record]) -> int:
        return self.inner.append_many(self._down(keyspace), records)

    def scan(
        self,
        keyspace: str,
        *,
        key: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Record]:
        return self.inner.scan(self._down(keyspace), key=key, start=start, end=end)

    def keyspaces(self) -> list[str]:
        n = len(self.prefix)
        return sorted(
            name[n:] for name in self.inner.keyspaces() if name.startswith(self.prefix)
        )

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        # The shared backend outlives this view; its owner closes it.
        self.inner.flush()

    # -- optional capabilities (delegated when the inner backend has them)
    def refresh(self) -> int:
        refresh = getattr(self.inner, "refresh", None)
        return refresh() if refresh is not None else 0

    def count(self, keyspace: str) -> int:
        count = getattr(self.inner, "count", None)
        if count is not None:
            return count(self._down(keyspace))
        return sum(1 for _ in self.scan(keyspace))

    def keys(self, keyspace: str) -> list[str]:
        keys = getattr(self.inner, "keys", None)
        if keys is not None:
            return keys(self._down(keyspace))
        seen = {r.get("k") for r in self.scan(keyspace)}
        return sorted(k for k in seen if k is not None)

    def __len__(self) -> int:
        return sum(self.count(ks) for ks in self.keyspaces())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixedBackend({self.prefix!r}, {self.inner!r})"
