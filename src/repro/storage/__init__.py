"""repro.storage — the unified telemetry-store API with pluggable backends.

One backend contract (:class:`StorageBackend`: append, scan by key/time
window, flush, close) carries every kind of telemetry the system records —
raw metric observations, query runs with labels, configuration snapshots,
events, and incident journals.  Two first-class implementations ship here:

* :class:`MemoryBackend` — per-keyspace record lists held by reference
  (zero-copy appends; the historical in-memory behaviour);
* :class:`JsonlBackend` — append-only JSONL segment files per keyspace with
  an in-memory index, replayed on open; crash-safe because segments are
  only ever appended to (torn tails from a mid-append crash are ignored on
  replay and reclaimed by the next writer);
* :class:`SqliteBackend` — one sqlite database with a real
  ``(keyspace, key, ts)`` index, so keyed and time-windowed scans are index
  lookups instead of whole-segment reads
  (``TelemetryStore.open(state_dir, backend="sqlite")``).

On top sits :class:`TelemetryStore` (``TelemetryStore.open(state_dir)`` /
``TelemetryStore.in_memory()``), the facade that re-founds the four monitor
stores on one backend, and :mod:`repro.storage.serializers`, the lossless
dict serializers shared by journal records, ``DiagnosisBundle.save()`` /
``load()``, and the fleet supervisor's resume checkpoints.

Implementing a third-party backend is a matter of satisfying the protocol —
see the "storage backend how-to" section of the README.
"""

from . import keyspaces
from .backend import (
    MemoryBackend,
    Record,
    StorageBackend,
    atomic_write_json,
    record,
)
from .jsonl import JsonlBackend
from .prefix import PrefixedBackend
from .sqlite import SqliteBackend
from .serializers import (
    access_from_dict,
    access_to_dict,
    catalog_from_dict,
    catalog_to_dict,
    component_from_dict,
    component_to_dict,
    dbconfig_from_dict,
    dbconfig_to_dict,
    plan_from_dict,
    plan_to_dict,
    run_from_dict,
    run_to_dict,
    spec_from_dict,
    spec_to_dict,
    testbed_from_dict,
    testbed_to_dict,
    topology_from_dict,
    topology_to_dict,
)

__all__ = [
    "keyspaces",
    "StorageBackend",
    "Record",
    "record",
    "atomic_write_json",
    "MemoryBackend",
    "JsonlBackend",
    "PrefixedBackend",
    "SqliteBackend",
    "TelemetryStore",
    "plan_to_dict",
    "plan_from_dict",
    "run_to_dict",
    "run_from_dict",
    "dbconfig_to_dict",
    "dbconfig_from_dict",
    "catalog_to_dict",
    "catalog_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "component_to_dict",
    "component_from_dict",
    "topology_to_dict",
    "topology_from_dict",
    "access_to_dict",
    "access_from_dict",
    "testbed_to_dict",
    "testbed_from_dict",
]


def __getattr__(name: str):
    # TelemetryStore is imported lazily (PEP 562): its module pulls in the
    # monitor stores, which themselves import repro.storage.serializers —
    # an eager import here would close that loop mid-initialisation.
    if name == "TelemetryStore":
        from .telemetry import TelemetryStore

        return TelemetryStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
