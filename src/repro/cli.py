"""Command-line interface: run scenarios and diagnose them from a shell.

Usage (``repro`` console script, or module form)::

    python -m repro.cli list
    python -m repro.cli run san-misconfiguration --hours 12
    python -m repro.cli run lock-contention --screens
    python -m repro.cli sweep --hours 8 --max-workers 4
    python -m repro.cli batch san-misconfiguration lock-contention --json
    python -m repro.cli watch --hours 8
    python -m repro.cli watch flapping-san-misconfiguration --json
    python -m repro.cli watch --hours 8 --state-dir ./state   # durable + resumable
    python -m repro.cli watch shared-pool-saturation --hours 8 --state-dir ./state
    python -m repro.cli watch --hours 8 --state-dir ./state --stats
    python -m repro.cli incidents --state-dir ./state
    python -m repro.cli correlate --state-dir ./state
    python -m repro.cli trace --state-dir ./state --critical-path
    python -m repro.cli metrics --state-dir ./state scheduler

``run`` simulates one scenario, diagnoses it, and prints the report (plus the
Figure-3/6/7 screens with ``--screens``).  ``sweep`` evaluates every Table-1
scenario and prints the reproduction table.  ``batch`` is the fleet-scale
entry point: it simulates one or more scenarios (``all`` for the whole
catalogue), diagnoses every diagnosable query in every bundle through
``DiagnosisPipeline.diagnose_many``, and prints a table or JSON.  ``watch``
is the closed loop: a :class:`~repro.stream.FleetSupervisor` advances a
fleet of scenario environments live on the barrier-free runtime — each
environment on its own clock, slow diagnoses overlapping the rest of the
fleet (cap them with ``--max-inflight-diagnoses``) — detectors open
incidents without any manual run-marking, and every incident is
auto-diagnosed; the fleet table refreshes per runtime event (or stream the
final state with ``--json``).  With
``--state-dir`` the incident history and detector state are journalled
durably and a killed run resumes from its last checkpoint; ``incidents``
queries that history afterwards — across any number of restarts.

Naming a *fleet scenario* (``shared-pool-saturation``,
``shared-switch-degradation``, ``coincidental-independent-faults``) expands
it into its member environments and enables the cross-environment
correlator: correlated incident opens across environments sharing a SAN
component merge into one fleet incident with a shared-root-cause drill-down
report (``repro.correlate``); ``correlate`` queries the durable
fleet-incident history of a state dir.

``watch --stats`` turns on observability (``repro.obs``): a live panel of
worker-pool and fleet metrics under the table, and — with ``--state-dir``
— a write-only trace/metrics sidecar under ``DIR/obs/`` that never feeds
the resume path.  ``trace`` reads it back as a per-span table, Chrome
trace-event JSON (``--chrome out.json``, loadable in Perfetto), or a
per-tick critical-path attribution (``--critical-path``); ``metrics``
queries the periodic registry snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .core import Diads, build_apg
from .core.evaluation import evaluate_bundle
from .core.pipeline import DiagnosisRequest, default_pipeline, diagnosable_queries
from .core.report import render_apg_browser, render_apg_overview, render_query_table
from .core.serialize import report_to_dict
from .correlate import (
    CorrelationEngine,
    FleetIncidentStore,
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
    fabric_shared_switch_degradation,
)
from .lab import (
    all_table1_scenarios,
    scenario_buffer_pool,
    scenario_concurrent_db_san,
    scenario_cpu_saturation,
    scenario_data_property_change,
    scenario_flapping_san_misconfiguration,
    scenario_healthy,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
    scenario_staggered_dual_faults,
    scenario_switch_degradation,
    scenario_two_external_workloads,
)
from .stream import FleetSupervisor

SCENARIOS = {
    "san-misconfiguration": scenario_san_misconfiguration,
    "san-misconfiguration-v2-burst": lambda **kw: scenario_san_misconfiguration(
        with_v2_burst=True, **kw
    ),
    "two-external-workloads": scenario_two_external_workloads,
    "data-property-change": scenario_data_property_change,
    "concurrent-db-san": scenario_concurrent_db_san,
    "lock-contention": scenario_lock_contention,
    "plan-regression": scenario_plan_regression,
    "cpu-saturation": scenario_cpu_saturation,
    "buffer-pool-thrashing": scenario_buffer_pool,
    "raid-rebuild": scenario_raid_rebuild,
    "flapping-san-misconfiguration": scenario_flapping_san_misconfiguration,
    "staggered-dual-faults": scenario_staggered_dual_faults,
    "healthy-baseline": scenario_healthy,
    "switch-degradation": scenario_switch_degradation,
}

#: Fleet scenarios: shared fabrics of many environments.  Naming one in
#: ``repro watch`` expands it into its member environments and enables the
#: cross-environment correlator automatically.
FLEET_SCENARIOS = {
    "shared-pool-saturation": fabric_shared_pool_saturation,
    "shared-switch-degradation": fabric_shared_switch_degradation,
    "coincidental-independent-faults": fabric_coincidental_independent_faults,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DIADS reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    run = sub.add_parser("run", help="simulate and diagnose one scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--hours", type=float, default=12.0, help="simulated hours")
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    run.add_argument(
        "--screens", action="store_true", help="also print the tool screens"
    )

    sweep = sub.add_parser("sweep", help="evaluate all Table-1 scenarios")
    sweep.add_argument("--hours", type=float, default=12.0)
    sweep.add_argument(
        "--max-workers", type=int, default=None,
        help="diagnose scenarios concurrently with this many threads",
    )

    batch = sub.add_parser(
        "batch", help="fleet-scale batch diagnosis over one or more scenarios"
    )
    batch.add_argument(
        "scenarios",
        nargs="+",
        metavar="scenario",
        help=f"scenario names or 'all' (choices: {', '.join(sorted(SCENARIOS))})",
    )
    batch.add_argument("--hours", type=float, default=12.0, help="simulated hours")
    batch.add_argument("--seed", type=int, default=None, help="override the seed")
    batch.add_argument(
        "--max-workers", type=int, default=None,
        help="thread-pool width for the batch (default: min(8, #queries))",
    )
    batch.add_argument(
        "--json", action="store_true", help="emit reports as a JSON array"
    )

    watch = sub.add_parser(
        "watch", help="watch a fleet live; auto-detect and auto-diagnose"
    )
    watch.add_argument(
        "scenarios",
        nargs="*",
        metavar="scenario",
        help=(
            "scenario names to watch (default: a four-environment fleet "
            "including a flapping fault); fleet-scenario names "
            f"({', '.join(sorted(FLEET_SCENARIOS))}) expand into their member "
            "environments and enable the cross-environment correlator"
        ),
    )
    watch.add_argument("--hours", type=float, default=8.0, help="simulated hours")
    watch.add_argument("--seed", type=int, default=None, help="override the seed")
    watch.add_argument(
        "--chunk-minutes", type=float, default=30.0,
        help="supervision chunk: detectors/diagnosis run after each chunk",
    )
    watch.add_argument(
        "--max-workers", type=int, default=None,
        help="thread-pool width for advancing environments and diagnosing",
    )
    watch.add_argument(
        "--pool", default=None, choices=["threads", "process", "auto"],
        help=(
            "execution backend for the shared worker pool: threads (default), "
            "process (environments simulate in worker processes with sticky "
            "affinity — true parallelism for CPU-bound fleets), or auto "
            "(process when cores and fleet size justify the handoff); "
            "REPRO_POOL sets the default"
        ),
    )
    watch.add_argument(
        "--max-inflight-diagnoses", type=int, default=None, metavar="N",
        help=(
            "cap concurrent diagnosis pipelines across the fleet (default: "
            "bounded only by the shared worker pool); advancing continues "
            "while diagnoses are in flight"
        ),
    )
    watch.add_argument(
        "--cooldown-minutes", type=float, default=120.0,
        help="incident cooldown after resolution (per detection target)",
    )
    watch.add_argument(
        "--stats", action="store_true",
        help=(
            "enable observability (repro.obs): live pool/fleet metrics under "
            "the table, and with --state-dir a trace + metrics sidecar for "
            "`repro trace` / `repro metrics`"
        ),
    )
    watch.add_argument(
        "--json", action="store_true",
        help="emit the final fleet state + incidents as JSON (no live table)",
    )
    watch.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help=(
            "persist incident history + detector state under DIR; when DIR "
            "already holds a checkpoint for the same fleet, the run resumes "
            "where it was killed (--hours is the total simulated duration)"
        ),
    )
    watch.add_argument(
        "--correlation-window-minutes", type=float, default=60.0, metavar="M",
        help=(
            "co-occurrence window of the cross-environment correlator "
            "(fleet scenarios only)"
        ),
    )
    watch.add_argument(
        "--min-members", type=int, default=3, metavar="K",
        help="minimum co-firing environments before incidents merge into a "
        "fleet incident",
    )
    watch.add_argument(
        "--max-skew-minutes", type=float, default=None, metavar="M",
        help=(
            "bound the fleet clock skew: a member never runs more than this "
            "far ahead of the slowest member (caps fleet-incident emit "
            "latency; must be at least one chunk)"
        ),
    )

    correlate = sub.add_parser(
        "correlate",
        help="query the durable fleet-incident history of a state dir",
    )
    correlate.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="state dir a fleet-scenario `repro watch --state-dir DIR` wrote",
    )
    correlate.add_argument(
        "--component", default=None, help="only fleet incidents of this shared component"
    )
    correlate.add_argument(
        "--status", default=None, choices=["open", "resolved"],
        help="only fleet incidents currently in this state",
    )
    correlate.add_argument(
        "--since-hours", type=float, default=None,
        help="only fleet incidents opened at or after this simulated hour",
    )
    correlate.add_argument(
        "--json", action="store_true", help="emit the tickets as a JSON array"
    )

    trace = sub.add_parser(
        "trace",
        help="inspect the trace sidecar an observability-enabled watch wrote",
    )
    trace.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help=(
            "state dir of a `repro watch --stats --state-dir DIR` run "
            "(or one run under REPRO_OBS=1)"
        ),
    )
    trace.add_argument(
        "--chrome", default=None, metavar="FILE",
        help=(
            "write Chrome trace-event JSON to FILE (load it in Perfetto or "
            "chrome://tracing) instead of printing the span table"
        ),
    )
    trace.add_argument(
        "--critical-path", action="store_true",
        help=(
            "attribute each iteration/tick's wall time to its child phases "
            "and rank the slowest (instead of the span table)"
        ),
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the table / critical-path report as JSON",
    )

    metrics = sub.add_parser(
        "metrics",
        help="query the metrics sidecar an observability-enabled watch wrote",
    )
    metrics.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help=(
            "state dir of a `repro watch --stats --state-dir DIR` run "
            "(or one run under REPRO_OBS=1)"
        ),
    )
    metrics.add_argument(
        "name", nargs="?", default=None,
        help="only metrics whose dotted name contains this substring",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="emit every snapshot as a JSON array (default: latest only)",
    )

    lint = sub.add_parser(
        "lint",
        help="static-check the determinism/locking invariants (repro.devtools)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", default=None, metavar="CHECKS",
        help="comma-separated checker subset (see repro.devtools.lint)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on pragmas that no longer suppress anything",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-running multi-tenant fleet service (REST + SSE)",
    )
    serve.add_argument(
        "--state-root", required=True, metavar="DIR",
        help=(
            "root directory for the service: shared storage backend, tenant "
            "manifest, and per-tenant watch checkpoints all live here; a "
            "restarted server resumes every tenant's running watch from it"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8787,
        help="TCP port (0 picks a free one; the bound port lands in "
        "DIR/serve.json)",
    )
    serve.add_argument(
        "--backend", default="jsonl", choices=["jsonl", "sqlite"],
        help="shared storage backend under the state root (default: jsonl)",
    )
    serve.add_argument(
        "--sse-backlog", type=int, default=128, metavar="N",
        help="per-SSE-client queue depth before a slow client is disconnected",
    )
    serve.add_argument(
        "--pool", default=None, choices=["threads", "process", "auto"],
        help=(
            "execution backend for the service's shared worker pool (see "
            "`repro watch --pool`); tenant watches started under a process "
            "pool simulate in sticky worker processes"
        ),
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="enable observability (repro.obs) for the service process",
    )

    incidents = sub.add_parser(
        "incidents", help="query the durable incident history of a state dir"
    )
    incidents.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="state dir a `repro watch --state-dir DIR` run wrote",
    )
    incidents.add_argument(
        "--env", default=None, help="only incidents of this environment"
    )
    incidents.add_argument(
        "--status", default=None, choices=["open", "diagnosing", "resolved"],
        help="only incidents currently in this state",
    )
    incidents.add_argument(
        "--since-hours", type=float, default=None,
        help="only incidents opened at or after this simulated hour",
    )
    incidents.add_argument(
        "--json", action="store_true", help="emit the tickets as a JSON array"
    )
    return parser


def cmd_list() -> int:
    for name in sorted(SCENARIOS):
        print(name)
    for name in sorted(FLEET_SCENARIOS):
        print(f"{name}  [fleet]")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    factory = SCENARIOS[args.scenario]
    kwargs = {"hours": args.hours}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    scenario = factory(**kwargs)
    print(f"Simulating {args.hours:g}h of scenario {scenario.info.name!r}...")
    bundle = scenario.run()
    if args.screens:
        print()
        print(render_query_table(bundle.stores.runs, bundle.query_name, limit=12))
        apg = build_apg(bundle, bundle.query_name)
        print()
        print(render_apg_overview(apg))
        leaf = apg.plan.leaves()[0].op_id
        print()
        print(render_apg_browser(apg, leaf))
    try:
        report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
    except ValueError as exc:
        # e.g. healthy-baseline: nothing degraded, nothing to diagnose
        print(f"nothing to diagnose: {exc}", file=sys.stderr)
        return 1
    print()
    print(report.render())
    top = report.top_cause
    ok = top is not None and top.match.cause_id in scenario.info.ground_truth
    print()
    print(f"ground truth: {', '.join(scenario.info.ground_truth)} -> "
          f"{'identified' if ok else 'MISSED'}")
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    scenarios = all_table1_scenarios(hours=args.hours)
    if args.max_workers and args.max_workers > 1:
        # Parallelise simulation + diagnosis per scenario on the shared
        # worker pool, at most --max-workers in flight.
        from .runtime import shared_pool

        evaluations = shared_pool().map_bounded(
            lambda s: evaluate_bundle(s.run()), scenarios, limit=args.max_workers
        )
        return _print_sweep(evaluations)
    return _print_sweep(evaluate_bundle(s.run()) for s in scenarios)


def _print_sweep(evaluations) -> int:
    failures = 0
    for evaluation in evaluations:
        print(evaluation.row(), flush=True)
        failures += 0 if evaluation.identified else 1
    return 1 if failures else 0


def cmd_batch(args: argparse.Namespace) -> int:
    unknown = [n for n in args.scenarios if n != "all" and n not in SCENARIOS]
    if unknown:
        print(f"unknown scenarios: {', '.join(unknown)}", file=sys.stderr)
        return 2
    names = sorted(SCENARIOS) if "all" in args.scenarios else args.scenarios

    requests: list[DiagnosisRequest] = []
    origins: list[str] = []
    for name in names:
        kwargs = {"hours": args.hours}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        scenario_bundle = SCENARIOS[name](**kwargs).run()
        bundle = scenario_bundle.bundle
        for query in diagnosable_queries(bundle):
            requests.append(DiagnosisRequest(bundle=bundle, query_name=query))
            origins.append(name)
    if not requests:
        print("no diagnosable queries found", file=sys.stderr)
        return 1

    pipeline = default_pipeline()
    reports = pipeline.diagnose_many(requests, max_workers=args.max_workers)

    if args.json:
        payload = [
            {"scenario": origin, **report_to_dict(report)}
            for origin, report in zip(origins, reports)
        ]
        print(json.dumps(payload, indent=2))
        return 0

    header = f"{'scenario':<32} {'query':<14} {'top cause':<38} {'conf':<7} impact"
    print(header)
    print("-" * len(header))
    for origin, report in zip(origins, reports):
        top = report.top_cause
        cause = top.display_id if top else "(none)"
        conf = top.match.confidence.value if top else "-"
        impact = (
            f"{top.impact_pct:5.1f}%"
            if top is not None and top.impact_pct is not None
            else "   n/a"
        )
        print(f"{origin:<32} {report.query_name:<14} {cause:<38} {conf:<7} {impact}")
    print(f"\n{len(reports)} queries diagnosed across {len(set(origins))} bundle(s)")
    return 0


#: The stock ``repro watch`` fleet: three persistent faults + one flapping.
DEFAULT_WATCH_FLEET = (
    "san-misconfiguration",
    "flapping-san-misconfiguration",
    "lock-contention",
    "data-property-change",
)


def cmd_watch(args: argparse.Namespace) -> int:
    names = args.scenarios or list(DEFAULT_WATCH_FLEET)
    unknown = [
        n for n in names if n not in SCENARIOS and n not in FLEET_SCENARIOS
    ]
    if unknown:
        print(f"unknown scenarios: {', '.join(unknown)}", file=sys.stderr)
        return 2
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        print(f"duplicate scenarios: {', '.join(duplicates)}", file=sys.stderr)
        return 2

    if args.stats:
        # Opt in before the supervisor is built: its obs sidecar backend is
        # created at construction time only when observability is enabled.
        from .obs import enable as obs_enable

        obs_enable()

    # Fleet scenarios expand into their member environments and enable the
    # cross-environment correlator, keyed by the merged membership map.
    fabrics = []
    for name in names:
        if name in FLEET_SCENARIOS:
            kwargs = {"hours": args.hours}
            if args.seed is not None:
                kwargs["seed"] = args.seed
            fabrics.append((name, FLEET_SCENARIOS[name](**kwargs)))
    correlator = None
    if fabrics:
        # Same-named components in different fleet scenarios are DIFFERENT
        # physical components (each fabric is its own set of simulators);
        # merging them would correlate unrelated environments.
        membership: dict[str, tuple[str, ...]] = {}
        for _fabric_name, fabric in fabrics:
            for component, members in fabric.membership().items():
                if component in membership:
                    print(
                        f"fleet scenarios conflict: shared component "
                        f"{component!r} is declared by more than one fleet "
                        "scenario (same-named components in different "
                        "fabrics are physically distinct) — watch them in "
                        "separate runs / state dirs",
                        file=sys.stderr,
                    )
                    return 2
                membership[component] = tuple(members)
        try:
            correlator = CorrelationEngine(
                membership,
                window_s=args.correlation_window_minutes * 60.0,
                min_members=args.min_members,
                store=(
                    FleetIncidentStore.open(args.state_dir)
                    if args.state_dir is not None
                    else None
                ),
            )
        except ValueError as exc:
            print(f"invalid correlation configuration: {exc}", file=sys.stderr)
            return 2

    # Resolve the pool backend against the actual fleet size: `auto` only
    # pays the process-handoff cost when there are enough environments (and
    # cores) for parallel simulation to win.
    from .runtime import resolve_pool_backend, shared_pool

    fleet_size = sum(len(fabric.members) for _n, fabric in fabrics) + sum(
        1 for n in names if n not in FLEET_SCENARIOS
    )
    try:
        pool_backend = resolve_pool_backend(args.pool, fleet_size=fleet_size)
    except ValueError as exc:
        print(f"invalid pool configuration: {exc}", file=sys.stderr)
        return 2
    pool = shared_pool(backend=pool_backend)

    try:
        supervisor = FleetSupervisor(
            chunk_s=args.chunk_minutes * 60.0,
            max_workers=args.max_workers,
            cooldown_s=args.cooldown_minutes * 60.0,
            state_dir=args.state_dir,
            pool=pool,
            max_inflight_diagnoses=args.max_inflight_diagnoses,
            correlator=correlator,
            max_skew_s=(
                args.max_skew_minutes * 60.0
                if args.max_skew_minutes is not None
                else None
            ),
            checkpoint_meta={
                "scenarios": list(names),
                "hours": args.hours,
                "seed": args.seed,
                "chunk_minutes": args.chunk_minutes,
                "cooldown_minutes": args.cooldown_minutes,
                **(
                    {
                        "correlation_window_minutes": args.correlation_window_minutes,
                        "min_members": args.min_members,
                    }
                    if correlator is not None
                    else {}
                ),
            },
        )
    except ValueError as exc:
        print(f"invalid watch configuration: {exc}", file=sys.stderr)
        return 2
    # Hydration specs carry each environment's registry identity (the same
    # keys checkpoint_meta records); under a process pool the supervisor uses
    # them to build and simulate environments inside sticky workers, and
    # under threads they are ignored.
    for fabric_name, fabric in fabrics:
        fabric.watch_all(
            supervisor,
            hydration={"fleet": fabric_name, "hours": args.hours, "seed": args.seed},
        )
    for name in names:
        if name in FLEET_SCENARIOS:
            continue
        kwargs = {"hours": args.hours}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        supervisor.watch_scenario(
            SCENARIOS[name](**kwargs),
            name=name,
            hydration={"scenario": name, "hours": args.hours, "seed": args.seed},
        )

    resumed_s = 0.0
    if supervisor.has_checkpoint():
        try:
            resumed_s = supervisor.resume()
        except (ValueError, FileNotFoundError) as exc:
            print(f"cannot resume from {args.state_dir}: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(
                f"resumed from {args.state_dir} at t={resumed_s / 3600.0:.1f}h "
                f"({len(supervisor.incidents())} incident(s) restored)"
            )

    live = not args.json and sys.stdout.isatty()
    redraws = 0
    last_height = 0
    last_draw = 0.0
    resolved_total = 0

    def stats_lines() -> list[str]:
        # The --stats panel: live pool counters + key fleet metrics.  Fixed
        # line count so the in-place redraw height stays stable; trailing
        # spaces blank out a previous, longer frame.
        from .obs import metrics as obs_metrics

        pool = supervisor.pool_stats()
        snap = obs_metrics.registry().snapshot()
        counters, gauges = snap["counters"], snap["gauges"]
        latency = snap["histograms"].get("scheduler.task_latency_s")
        p95 = f"{latency['p95_ms']:.0f}ms" if latency else "-"
        lines = [
            (
                f"pool: {pool['active']}/{pool['max_workers']} active  "
                f"queued {pool['queued']}  done {pool['completed']}  "
                f"failed {pool['failed']}  "
                f"util {pool['utilisation'] * 100.0:.0f}%   "
            ),
            (
                f"obs:  iterations "
                f"{int(counters.get('supervisor.iterations', 0.0))}  "
                f"detector fires {int(counters.get('detectors.fires', 0.0))}  "
                f"diagnoses in flight "
                f"{int(gauges.get('diagnoses.in_flight', 0.0))}  "
                f"task p95 {p95}   "
            ),
        ]
        if "workers" in pool:
            # Process backend: one fixed line of per-worker routing stats
            # (pid, sticky affinity keys, tasks routed, handoff volume).
            lines.append(
                "proc: "
                + "  ".join(
                    f"[{row['worker']}] pid {row['pid'] or '-'} "
                    f"keys {row['affinity_keys']} tasks {row['tasks_routed']} "
                    f"io {row['handoff_bytes'] / 1024.0:.0f}KiB"
                    for row in pool["workers"]
                )
                + "   "
            )
            # Fleet-level aggregates folded home from the worker registries
            # (the workers.* rollup of each worker.<pid>.* dump).
            lines.append(
                f"work: chunks {int(counters.get('workers.env.chunks', 0.0))}  "
                f"detections "
                f"{int(counters.get('workers.env.detections', 0.0))}  "
                f"diagnoses "
                f"{int(counters.get('workers.env.diagnoses', 0.0))}  "
                f"spans dropped "
                f"{int(counters.get('obs.worker_spans_dropped', 0.0))}   "
            )
        return lines

    def redraw() -> None:
        # Redraw in place: compose the whole frame first, so the cursor-up
        # distance is the *previous* frame's exact height.
        nonlocal redraws, last_height
        clocks = supervisor.clocks
        lines = [supervisor.render_table()]
        if args.stats:
            lines.extend(stats_lines())
        lines.append(
            f"t>={clocks.min_clock / 3600.0:.1f}h (skew {clocks.skew / 60.0:.0f}m)  "
            f"incidents resolved: {resolved_total}   "
        )
        frame = "\n".join(lines)
        if redraws:
            print(f"\x1b[{last_height}A", end="")
        redraws += 1
        last_height = frame.count("\n") + 1
        print(frame, flush=True)

    def on_event(event: dict) -> None:
        # The supervisor streams per-environment events (no global tick):
        # the live table refreshes as each environment moves, throttled to
        # keep terminal I/O off the supervision hot path.
        nonlocal last_draw, resolved_total
        kind = event["type"]
        if kind == "incident_resolved":
            resolved_total += 1
        if live:
            # The live-table redraw throttle is the one legitimate wall-clock
            # read: it paces *rendering* for human eyes and never feeds the
            # simulation, detectors, or journals.
            now = time.monotonic()  # repro-lint: disable=determinism
            if (
                kind in ("incident_resolved", "env_done", "fleet_done")
                or now - last_draw >= 0.2
            ):
                last_draw = now
                redraw()
        elif not args.json and kind == "incident_resolved":
            print(
                f"t={event['clock'] / 3600.0:5.1f}h  {event['incident_id']:<40} "
                f"{event['severity']:<8} -> {event['top_cause']}",
                flush=True,
            )

    remaining_s = args.hours * 3600.0 - resumed_s
    if remaining_s > 0:
        supervisor.run(remaining_s, on_event=on_event)
    elif not args.json:
        print(
            f"checkpoint already covers {resumed_s / 3600.0:.1f}h "
            f">= --hours {args.hours:g}; nothing left to simulate"
        )

    # Incidents restored from a checkpoint carry their report in serialised
    # form (report_data); both count as diagnosed.
    diagnosed = [
        i
        for i in supervisor.incidents()
        if i.report is not None or i.report_data is not None
    ]
    if args.json:
        payload = supervisor.to_dict()
        if args.stats:
            # Observability is additive: the checkpoint-equivalent state in
            # to_dict() stays byte-identical; pool/metrics ride alongside.
            from .obs import metrics as obs_metrics

            payload["pool"] = supervisor.pool_stats()
            payload["metrics"] = obs_metrics.registry().snapshot()
        print(json.dumps(payload, indent=2))
    else:
        if not sys.stdout.isatty():
            print()
            print(supervisor.render_table())
        summary = (
            f"\n{len(supervisor.incidents())} incident(s), {len(diagnosed)} "
            f"diagnosed across {len(supervisor.watched)} environment(s)"
        )
        if correlator is not None:
            summary += (
                f"; {len(correlator.fleet_incidents())} fleet incident(s) "
                "correlated"
            )
        print(summary)
        if args.stats:
            pool = supervisor.pool_stats()
            print(
                f"pool: {pool['submitted']} task(s) submitted, "
                f"{pool['completed']} completed, {pool['failed']} failed "
                f"({pool['max_workers']} worker(s))"
            )
            for row in pool.get("workers", ()):
                print(
                    f"  worker[{row['worker']}]: pid {row['pid'] or '-'}, "
                    f"{row['affinity_keys']} affinity key(s), "
                    f"{row['tasks_routed']} task(s) routed, "
                    f"{row['handoff_bytes'] / 1024.0:.0f} KiB handoff"
                )
            if args.state_dir is not None:
                print(
                    f"observability sidecar written: `repro trace --state-dir "
                    f"{args.state_dir}` / `repro metrics --state-dir "
                    f"{args.state_dir}`"
                )
    return 0 if diagnosed else 1


def cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .obs import critical_path, summarize
    from .obs.export import load_spans, write_chrome_trace

    if not os.path.isdir(args.state_dir):
        print(f"no state dir at {args.state_dir}", file=sys.stderr)
        return 2
    spans = load_spans(args.state_dir)
    if not spans:
        print(
            "no trace data recorded — run `repro watch --stats --state-dir "
            f"{args.state_dir}` (or set REPRO_OBS=1) first",
            file=sys.stderr,
        )
        return 1

    if args.chrome:
        events = write_chrome_trace(spans, args.chrome)
        print(
            f"{len(spans)} span(s) -> {args.chrome} ({events} trace events; "
            "load in Perfetto or chrome://tracing)"
        )
        return 0

    if args.critical_path:
        report = critical_path(spans)
        if args.json:
            print(json.dumps(report, indent=2))
            return 0
        print(
            f"{report['roots']} root span(s), "
            f"{report['total_wall_s'] * 1000.0:.1f}ms total wall, "
            f"{report['coverage'] * 100.0:.1f}% attributed to named phases"
        )
        if report["by_name"]:
            print("\nattribution (fleet-wide, clipped to roots):")
            for name, seconds in report["by_name"].items():
                print(f"  {name:<24} {seconds * 1000.0:>10.1f}ms")
        if report["slowest"]:
            print("\nslowest roots:")
            for root in report["slowest"]:
                where = f" [{root['env']}]" if root.get("env") else ""
                chain = " -> ".join(
                    f"{p['name']} {p['wall_ms']:.1f}ms" for p in root["phases"]
                )
                print(
                    f"  {root['name']}{where} t={root['sim_t']:.0f}s "
                    f"{root['wall_ms']:.1f}ms "
                    f"({root['coverage'] * 100.0:.0f}% covered)"
                )
                if chain:
                    print(f"    {chain}")
        return 0

    summary = summarize(spans)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    header = (
        f"{'span':<24} {'count':>7} {'total(s)':>9} {'mean(ms)':>9} "
        f"{'p50(ms)':>8} {'p95(ms)':>8} {'max(ms)':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, row in summary.items():
        print(
            f"{name:<24} {row['count']:>7} {row['total_s']:>9.3f} "
            f"{row['mean_ms']:>9.2f} {row['p50_ms']:>8.2f} "
            f"{row['p95_ms']:>8.2f} {row['max_ms']:>8.2f}"
        )
    print(f"\n{len(spans)} span(s) across {len(summary)} name(s)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import os

    from .obs.export import load_metric_snapshots

    if not os.path.isdir(args.state_dir):
        print(f"no state dir at {args.state_dir}", file=sys.stderr)
        return 2
    snapshots = load_metric_snapshots(args.state_dir)
    if not snapshots:
        print(
            "no metrics recorded — run `repro watch --stats --state-dir "
            f"{args.state_dir}` (or set REPRO_OBS=1) first",
            file=sys.stderr,
        )
        return 1

    def keep(name: str) -> bool:
        return args.name is None or args.name in name

    if args.json:
        filtered = []
        for snap in snapshots:
            metrics = snap.get("metrics", {})
            filtered.append(
                {
                    "t": snap.get("t"),
                    "metrics": {
                        kind: {
                            name: value
                            for name, value in metrics.get(kind, {}).items()
                            if keep(name)
                        }
                        for kind in ("counters", "gauges", "histograms")
                    },
                }
            )
        print(json.dumps(filtered, indent=2))
        return 0

    latest = snapshots[-1]
    metrics = latest.get("metrics", {})
    print(
        f"latest snapshot at t={latest.get('t', 0.0) / 3600.0:.1f}h "
        f"({len(snapshots)} snapshot(s) recorded)"
    )
    # Under --pool process the snapshot also carries every worker registry
    # folded home (worker.<pid>.* verbatim, workers.* fleet aggregates).
    worker_pids = {
        name.split(".", 2)[1]
        for kind in ("counters", "gauges", "histograms")
        for name in metrics.get(kind, {})
        if name.startswith("worker.")
    }
    if worker_pids:
        print(
            f"merged worker registries: {len(worker_pids)} "
            f"(pids {', '.join(sorted(worker_pids))})"
        )
    shown = 0
    for name, value in sorted(metrics.get("counters", {}).items()):
        if keep(name):
            print(f"  counter    {name:<32} {value:g}")
            shown += 1
    for name, value in sorted(metrics.get("gauges", {}).items()):
        if keep(name):
            print(f"  gauge      {name:<32} {value:g}")
            shown += 1
    for name, row in sorted(metrics.get("histograms", {}).items()):
        if keep(name):
            print(
                f"  histogram  {name:<32} count {row['count']} "
                f"mean {row['mean_ms']:.2f}ms p95 {row['p95_ms']:.2f}ms "
                f"max {row['max_ms']:.2f}ms"
            )
            shown += 1
    if not shown:
        print(f"  (no metric matches {args.name!r})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Reuse the devtools entry point so `repro lint` and
    # `python -m repro.devtools.lint` are the same tool, flag for flag.
    from .devtools.lint import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.strict:
        argv.append("--strict")
    if args.json:
        argv.append("--json")
    return lint_main(argv)


def cmd_incidents(args: argparse.Namespace) -> int:
    import os

    from .stream import IncidentStore

    if not os.path.isdir(args.state_dir):
        print(f"no state dir at {args.state_dir}", file=sys.stderr)
        return 2
    store = IncidentStore.open(args.state_dir)
    try:
        since = args.since_hours * 3600.0 if args.since_hours is not None else None
        tickets = store.history(env=args.env, state=args.status, since=since)
        if args.json:
            print(json.dumps(tickets, indent=2))
            return 0
        if not tickets:
            print("no incidents recorded")
            return 0
        header = (
            f"{'incident':<40} {'opened(h)':>9} {'state':<11} {'sev':<8} "
            f"{'det':>3} top cause"
        )
        print(header)
        print("-" * len(header))
        for ticket in tickets:
            report = ticket.get("report")
            causes = (report or {}).get("causes") or []
            top = causes[0]["cause_id"] if causes else "-"
            print(
                f"{ticket['incident_id']:<40} {ticket['opened_at'] / 3600.0:>9.1f} "
                f"{ticket['state']:<11} {ticket['severity']:<8} "
                f"{len(ticket.get('detections', [])):>3} {top}"
            )
        print(f"\n{len(tickets)} incident(s)")
        return 0
    finally:
        store.close()


def cmd_correlate(args: argparse.Namespace) -> int:
    import os

    if not os.path.isdir(args.state_dir):
        print(f"no state dir at {args.state_dir}", file=sys.stderr)
        return 2
    store = FleetIncidentStore.open(args.state_dir)
    try:
        since = args.since_hours * 3600.0 if args.since_hours is not None else None
        tickets = store.history(
            component=args.component, state=args.status, since=since
        )
        if args.json:
            print(json.dumps(tickets, indent=2))
            return 0
        if not tickets:
            print("no fleet incidents recorded")
            return 0
        header = (
            f"{'fleet incident':<24} {'component':<12} {'opened(h)':>9} "
            f"{'state':<9} {'conf':>5} {'members':>7} top cause"
        )
        print(header)
        print("-" * len(header))
        from .correlate import ticket_top_cause

        for ticket in tickets:
            print(
                f"{ticket['fleet_id']:<24} {ticket['component_id']:<12} "
                f"{ticket['opened_at'] / 3600.0:>9.1f} {ticket['state']:<9} "
                f"{ticket['confidence']:>5.2f} {len(ticket['members']):>7} "
                f"{ticket_top_cause(ticket) or '-'}"
            )
        print(f"\n{len(tickets)} fleet incident(s)")
        return 0
    finally:
        store.close()


def cmd_serve(args: argparse.Namespace) -> int:
    if args.stats:
        from .obs import enable as obs_enable

        obs_enable()
    # Deferred import: the serve subsystem pulls in asyncio server machinery
    # no other subcommand needs.
    from .serve import ServeApp

    try:
        app = ServeApp(
            args.state_root,
            backend=args.backend,
            sse_backlog=args.sse_backlog,
            pool=args.pool,
        )
    except ValueError as exc:
        print(f"invalid pool configuration: {exc}", file=sys.stderr)
        return 2
    print(
        f"repro serve: state root {app.state_root} ({args.backend}), "
        f"binding {args.host}:{args.port} ...",
        flush=True,
    )
    try:
        resumed = app.serve_forever(args.host, args.port)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    print(f"repro serve: stopped ({resumed} watch(es) had been resumed)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "watch":
        return cmd_watch(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "metrics":
        return cmd_metrics(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "incidents":
        return cmd_incidents(args)
    if args.command == "correlate":
        return cmd_correlate(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
