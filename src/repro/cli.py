"""Command-line interface: run scenarios and diagnose them from a shell.

Usage (module form, no console-script needed)::

    python -m repro.cli list
    python -m repro.cli run san-misconfiguration --hours 12
    python -m repro.cli run lock-contention --screens
    python -m repro.cli sweep --hours 8

``run`` simulates one scenario, diagnoses it, and prints the report (plus the
Figure-3/6/7 screens with ``--screens``).  ``sweep`` evaluates every Table-1
scenario and prints the reproduction table.
"""

from __future__ import annotations

import argparse
import sys

from .core import Diads, build_apg
from .core.evaluation import evaluate_bundle
from .core.report import render_apg_browser, render_apg_overview, render_query_table
from .lab import (
    all_table1_scenarios,
    scenario_buffer_pool,
    scenario_concurrent_db_san,
    scenario_cpu_saturation,
    scenario_data_property_change,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
    scenario_two_external_workloads,
)

SCENARIOS = {
    "san-misconfiguration": scenario_san_misconfiguration,
    "san-misconfiguration-v2-burst": lambda **kw: scenario_san_misconfiguration(
        with_v2_burst=True, **kw
    ),
    "two-external-workloads": scenario_two_external_workloads,
    "data-property-change": scenario_data_property_change,
    "concurrent-db-san": scenario_concurrent_db_san,
    "lock-contention": scenario_lock_contention,
    "plan-regression": scenario_plan_regression,
    "cpu-saturation": scenario_cpu_saturation,
    "buffer-pool-thrashing": scenario_buffer_pool,
    "raid-rebuild": scenario_raid_rebuild,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DIADS reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    run = sub.add_parser("run", help="simulate and diagnose one scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--hours", type=float, default=12.0, help="simulated hours")
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    run.add_argument(
        "--screens", action="store_true", help="also print the tool screens"
    )

    sweep = sub.add_parser("sweep", help="evaluate all Table-1 scenarios")
    sweep.add_argument("--hours", type=float, default=12.0)
    return parser


def cmd_list() -> int:
    for name in sorted(SCENARIOS):
        print(name)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    factory = SCENARIOS[args.scenario]
    kwargs = {"hours": args.hours}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    scenario = factory(**kwargs)
    print(f"Simulating {args.hours:g}h of scenario {scenario.info.name!r}...")
    bundle = scenario.run()
    if args.screens:
        print()
        print(render_query_table(bundle.stores.runs, bundle.query_name, limit=12))
        apg = build_apg(bundle, bundle.query_name)
        print()
        print(render_apg_overview(apg))
        leaf = apg.plan.leaves()[0].op_id
        print()
        print(render_apg_browser(apg, leaf))
    report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
    print()
    print(report.render())
    top = report.top_cause
    ok = top is not None and top.match.cause_id in scenario.info.ground_truth
    print()
    print(f"ground truth: {', '.join(scenario.info.ground_truth)} -> "
          f"{'identified' if ok else 'MISSED'}")
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    failures = 0
    for scenario in all_table1_scenarios(hours=args.hours):
        evaluation = evaluate_bundle(scenario.run())
        print(evaluation.row())
        failures += 0 if evaluation.identified else 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
